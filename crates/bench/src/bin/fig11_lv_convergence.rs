//! Figure 11: LV protocol — variation of populations.
//!
//! A 100 000-process group starts with 60 000 processes in state x and 40 000
//! in state y (p = 0.01). Everyone converges to the initial majority state x
//! within 500 protocol periods.
//!
//! Unlike the paper (which plots a single run), this binary runs an 8-seed
//! ensemble on all cores and reports the per-period mean ± std envelope, so
//! the convergence time comes with an error bar.

use dpde_bench::{
    banner, compare_line, downsampled_columns, first_below, scale_from_args, scaled, LV_SERIES,
};
use dpde_core::runtime::{AgentRuntime, Ensemble, InitialStates};
use dpde_protocols::lv::LvParams;
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 11",
        "LV protocol, 60/40 split converges to the majority (8-seed ensemble)",
        scale,
    );

    let n = scaled(100_000, scale, 2_000);
    let horizon = scaled(1_000, scale.max(0.5), 600);
    let params = LvParams::new();
    let zeros = n * 6 / 10;
    let ones = n - zeros;

    let ensemble = Ensemble::of(params.protocol().expect("valid LV parameters"))
        .scenario(Scenario::new(n as usize, horizon).unwrap())
        .initial(InitialStates::counts(&[zeros, ones, 0]))
        .seed_range(11..19)
        .count_alive_only()
        .run::<AgentRuntime>()
        .expect("LV ensemble");

    println!("period,State X (mean),State Y (mean),State Z (mean),State X (std)");
    let columns: Vec<Vec<f64>> = LV_SERIES
        .iter()
        .map(|name| ensemble.mean_series(name).unwrap())
        .chain([ensemble.std_series(LV_SERIES[0]).unwrap()])
        .collect();
    for row in downsampled_columns(&columns, (horizon / 100) as usize) {
        println!("{}", row.join(","));
    }

    let xs = ensemble.mean_series(LV_SERIES[0]).unwrap();
    let ys = ensemble.mean_series(LV_SERIES[1]).unwrap();
    let convergence = first_below(&xs, &ys, (n / 1000).max(1) as f64);
    let majority_wins = ensemble
        .final_counts
        .iter()
        .filter(|last| last[0] > 0.99 * n as f64)
        .count();

    println!("\n== summary ==");
    compare_line(
        "group converges to the initial majority (state x)",
        "yes",
        &format!(
            "{majority_wins}/{} seeds (ensemble over {} threads)",
            ensemble.runs(),
            ensemble.threads_used
        ),
    );
    compare_line(
        "convergence time (minority below 0.1% of N)",
        "< 500 periods",
        &convergence
            .map(|p| format!("{p} periods (ensemble mean)"))
            .unwrap_or_else(|| "not reached".into()),
    );
    compare_line(
        "predicted O(log N / (3p)) convergence",
        "≈ 384 periods at N = 100 000",
        &format!("{:.0} periods", params.expected_convergence_periods(n)),
    );
}
