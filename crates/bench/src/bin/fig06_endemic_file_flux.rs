//! Figure 6: file-flux rate (receptive→stash transfers per protocol period)
//! for the Figure 5 experiment.
//!
//! A massive failure of 50 % of the hosts at t = 5000 does not change the
//! flux drastically: the flux is γ·y∞ at equilibrium and the stasher count
//! roughly halves, so the flux roughly halves as well — and stays tiny
//! relative to the group size throughout.

use dpde_bench::{banner, compare_line, run_endemic, scale_from_args, scaled};
use dpde_protocols::endemic::{EndemicParams, RECEPTIVE, STASH};
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 6",
        "endemic protocol, file flux rate under massive failure",
        scale,
    );

    let n = scaled(100_000, scale, 2_000) as usize;
    let horizon = scaled(10_000, scale.max(0.2), 2_000);
    let failure_at = horizon / 2;
    let params = EndemicParams::from_contact_count(2, 1e-3, 1e-6).expect("valid parameters");

    let scenario = Scenario::new(n, horizon)
        .unwrap()
        .with_massive_failure(failure_at, 0.5)
        .unwrap()
        .with_seed(5);
    let result = run_endemic(params, &scenario, false);

    // The flux series: receptive→stash transitions per period.
    let edge = format!("{RECEPTIVE}->{STASH}");
    let flux = result
        .run
        .transitions
        .series(&edge)
        .map(|s| s.to_vec())
        .unwrap_or_default();
    println!("period,Rcptv->Stash");
    let stride = (horizon / 200).max(1);
    let mut by_period = vec![0.0f64; horizon as usize + 1];
    for (p, v) in &flux {
        by_period[*p as usize] += v;
    }
    for (p, v) in by_period.iter().enumerate().step_by(stride as usize) {
        println!("{p},{v}");
    }

    let mean = |s: &[f64]| {
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    };
    let pre = mean(&by_period[(failure_at as usize).saturating_sub(500)..failure_at as usize]);
    let post = mean(&by_period[(horizon as usize - 500)..horizon as usize]);
    let expected_pre = params.expected_stashers(n as f64) * params.gamma;

    println!("\n== summary ==");
    compare_line(
        "flux stays low and is not affected drastically by the failure",
        "no wild variation",
        &format!("pre-failure mean {pre:.1}, post-failure mean {post:.1} transfers/period"),
    );
    compare_line(
        "pre-failure flux matches the analytical rate gamma*y_inf",
        &format!("{expected_pre:.1}"),
        &format!("{pre:.1}"),
    );
}
