//! Section 5.1, "Reality Check": storage duty cycle and bandwidth of the
//! endemic replication protocol in a 100 000-host system.

use dpde_bench::{banner, compare_line, scale_from_args};
use dpde_protocols::endemic::analysis::reality_check;

fn main() {
    let scale = scale_from_args();
    banner(
        "Reality check",
        "per-host storage and bandwidth cost of one replicated file",
        scale,
    );

    // 100 000 hosts, ~100 stashers, γ = 1e-3, 6-minute periods, 88.2 KB file.
    let rc = reality_check(100_000.0, 100.0, 1e-3, 360.0, 88.2 * 1000.0);

    println!("quantity,value");
    println!(
        "storage duty cycle per host,{:.4}%",
        rc.storage_duty_cycle * 100.0
    );
    println!(
        "storage duration per stint,{:.0} periods ({:.0} hours)",
        rc.storage_duration_periods, rc.storage_duration_hours
    );
    println!(
        "file transfers per period (system),{:.2}",
        rc.transfers_per_period
    );
    println!(
        "bandwidth per file per host,{:.3e} bps",
        rc.bandwidth_bps_per_host
    );

    println!("\n== summary ==");
    compare_line(
        "each host stores the file",
        "0.1% of the time",
        &format!("{:.2}%", rc.storage_duty_cycle * 100.0),
    );
    compare_line(
        "average storage duration",
        "~100 hours (a little over four days)",
        &format!("{:.0} hours", rc.storage_duration_hours),
    );
    compare_line(
        "bandwidth utilization per file per host",
        "3.92e-3 bps",
        &format!("{:.2e} bps", rc.bandwidth_bps_per_host),
    );
}
