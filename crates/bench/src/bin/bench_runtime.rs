//! Runtime performance baseline: periods/sec and process-periods/sec for the
//! four runtime fidelities over a group-size sweep, written to
//! `BENCH_runtime.json` so every PR has a perf trajectory to compare against.
//!
//! Two workloads:
//!
//! * **epidemic** — the paper's motivating protocol (30 periods, one initial
//!   infective) across the N sweep, for agent/batched/hybrid/aggregate. The
//!   hybrid runtime pays membership fidelity for the small-count head and
//!   the extinction window of this workload, so its row sits between agent
//!   and batched.
//! * **endemic** — the Figure 2 replication protocol started at its endemic
//!   equilibrium at N = 10⁵ (all populations large): the hybrid runtime must
//!   stay at count level and beat the agent runtime by ≥ 10× wall-clock.
//!
//! The epidemic workload also runs on the async message-passing runtime
//! (N ∈ {10³, 10⁵}, zero-latency and lossy exponential-latency links) so the
//! per-message event-loop cost has a tracked trajectory. Async is gated
//! against the *agent* runtime only: a count-batched period costs
//! O(states²·actions) independent of N, while the async runtime pays a heap
//! push/pop per contact message, so no message-level execution can beat the
//! count-level tiers — the honest, enforceable bound is a constant factor of
//! the per-process agent baseline.
//!
//! Both workloads also run on the continuous-time runtimes (exact SSA and
//! tau-leaping) at N ∈ {10³, 10⁵}. Their period cost is **O(events)** — the
//! number of reaction firings, roughly N × the mean per-period rate — not
//! independent of N like the count-batched tiers, so they are never gated
//! against batched. The honest, enforceable envelope is a constant factor of
//! the per-process agent runtime at the same N: an SSA event costs one
//! propensity scan over the channel list where an agent process-period costs
//! one action sweep, and the epidemic/endemic workloads fire at most a few
//! events per process over the horizon.
//!
//! Both workloads also run on the sharded runtime (S ∈ {1, 8, 64} at
//! N = 10⁶–10⁷) so the per-shard overhead has a tracked trajectory. A note
//! on the sharded gates: a count-batched period costs O(states²·actions)
//! *independent of N* — microseconds at N = 10⁷ — so S shards cost roughly
//! S × that, and no sharded configuration can beat single-group batched
//! wall-clock (let alone on this repo's single-core CI runner, where worker
//! threads cannot overlap). The enforceable form of "sharding must not cost
//! the count-level win" is what we gate: the delegating S = 1 path stays
//! within a small factor of batched, S = 8 stays within a linear-in-S
//! envelope of batched (catching any accidental O(N) term in the exchange),
//! and sharded throughput never regresses past the agent baseline.
//!
//! `--scale` / `DPDE_SCALE` shrink the sweep for CI smoke runs; the default
//! reproduces the full N = 10³…10⁶ sweep (plus 10⁷ for the count-level
//! runtimes, whose period cost is independent of N).
//!
//! Exits non-zero (CI perf regression gates) if
//!
//! * the batched runtime is not faster than the agent runtime at the largest
//!   common N,
//! * the hybrid runtime regresses past the agent baseline on the endemic
//!   workload (any scale; small smoke scales legitimately keep hybrid at
//!   membership fidelity, so the bound there is "not slower", with a noise
//!   allowance),
//! * at full scale (≥ 1), the hybrid runtime is not ≥ 10× faster than the
//!   agent runtime on the endemic workload,
//! * a continuous-time gate fails: SSA or tau-leap drifts past
//!   `max(25 × agent, 5 ms)` at the largest continuous N of its workload
//!   (the O(events) envelope — a per-event cost regression or an accidental
//!   O(N²) term in the channel scan blows through it), or
//! * a sharded gate fails: S = 1 drifts past `max(10 × batched, 2 ms)` at the
//!   largest epidemic N, S = 8 drifts past `max(32 × S × batched, 10 ms)`
//!   there, or S = 8 process-period throughput at the largest epidemic N
//!   falls below the agent runtime's at the largest common N.

use dpde_bench::{banner, scale_from_args, scaled};
use dpde_core::runtime::{
    AgentRuntime, AggregateRuntime, AsyncRuntime, BatchedRuntime, HybridRuntime, InitialStates,
    Runtime, ShardedRuntime, SsaRuntime, TauLeapRuntime,
};
use dpde_core::{Protocol, ProtocolCompiler};
use dpde_protocols::endemic::EndemicParams;
use netsim::transport::{LatencyModel, LinkModel, TransportConfig};
use netsim::{Scenario, Topology};
use odekit::EquationSystemBuilder;
use std::time::Instant;

const PERIODS: u64 = 30;
/// Per-period migration probability for the sharded rows: low enough that
/// shards stay meaningfully local, high enough that the exchange path (the
/// code being timed) does real work every period.
const SHARD_MIGRATION: f64 = 0.01;
/// Shard counts tracked in the sweep; "s1" exercises the bit-for-bit
/// delegation path, the others the exchange + per-shard stepping path.
const SHARD_SWEEP: [(usize, &str); 3] = [(1, "sharded_s1"), (8, "sharded_s8"), (64, "sharded_s64")];

fn epidemic() -> Protocol {
    let sys = EquationSystemBuilder::new()
        .vars(["x", "y"])
        .term("x", -1.0, &[("x", 1), ("y", 1)])
        .term("y", 1.0, &[("x", 1), ("y", 1)])
        .build()
        .expect("epidemic equations are well-formed");
    ProtocolCompiler::new("epidemic")
        .compile(&sys)
        .expect("epidemic compiles")
}

/// One timed measurement: median wall-clock seconds over `reps` runs.
fn time_runs(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Drives a scenario-driven runtime through the `Runtime` trait without
/// observer overhead (init + steps only — what the fidelity itself costs).
fn run_steps<R: Runtime>(runtime: &R, scenario: &Scenario, initial: &InitialStates) {
    let mut state = runtime.init(scenario, initial).expect("init");
    for _ in 0..scenario.periods() {
        runtime.step(&mut state).expect("step");
    }
}

struct Row {
    workload: &'static str,
    runtime: &'static str,
    n: u64,
    seconds: f64,
}

impl Row {
    fn periods_per_sec(&self) -> f64 {
        PERIODS as f64 / self.seconds
    }

    fn process_periods_per_sec(&self) -> f64 {
        (self.n * PERIODS) as f64 / self.seconds
    }

    fn json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"runtime\": \"{}\", \"n\": {}, \
             \"seconds\": {:.6}, \"periods_per_sec\": {:.1}, \
             \"process_periods_per_sec\": {:.1}}}",
            self.workload,
            self.runtime,
            self.n,
            self.seconds,
            self.periods_per_sec(),
            self.process_periods_per_sec()
        )
    }
}

fn main() {
    let scale = scale_from_args();
    banner(
        "BENCH_runtime",
        "periods/sec per runtime fidelity (epidemic sweep + endemic hybrid gate)",
        scale,
    );

    let protocol = epidemic();
    // Sweep sizes; the count-level runtimes get one extra decade (agent time
    // there is better spent elsewhere — its scaling is already visible).
    let mut common: Vec<u64> = [1_000u64, 10_000, 100_000, 1_000_000]
        .iter()
        .map(|&n| scaled(n, scale, 100))
        .collect();
    common.dedup(); // small scales can collapse adjacent decades onto the floor
    let count_level_extra = scaled(10_000_000, scale, 100);
    let largest_common = *common.last().expect("non-empty sweep");

    let mut rows: Vec<Row> = Vec::new();
    println!("workload,runtime,n,seconds,periods_per_sec,process_periods_per_sec");
    let mut measure = |workload: &'static str,
                       runtime: &'static str,
                       n: u64,
                       reps: usize,
                       f: &mut dyn FnMut()| {
        let seconds = time_runs(reps, f);
        let row = Row {
            workload,
            runtime,
            n,
            seconds,
        };
        println!(
            "{},{},{},{:.6},{:.1},{:.1}",
            workload,
            runtime,
            n,
            seconds,
            row.periods_per_sec(),
            row.process_periods_per_sec()
        );
        rows.push(row);
    };

    for &n in &common {
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&[n - 1, 1]);
        let reps = if n >= 1_000_000 { 3 } else { 5 };

        let agent = AgentRuntime::new(protocol.clone());
        measure("epidemic", "agent", n, reps, &mut || {
            run_steps(&agent, &scenario, &initial)
        });

        let batched = BatchedRuntime::new(protocol.clone());
        measure("epidemic", "batched", n, reps, &mut || {
            run_steps(&batched, &scenario, &initial)
        });

        let hybrid = HybridRuntime::new(protocol.clone());
        measure("epidemic", "hybrid", n, reps, &mut || {
            run_steps(&hybrid, &scenario, &initial)
        });

        let aggregate = AggregateRuntime::new(protocol.clone());
        measure("epidemic", "aggregate", n, reps, &mut || {
            run_steps(&aggregate, &scenario, &initial)
        });
    }
    // Count-level runtimes only: period cost independent of N.
    {
        let n = count_level_extra;
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&[n - 1, 1]);
        let batched = BatchedRuntime::new(protocol.clone());
        measure("epidemic", "batched", n, 3, &mut || {
            run_steps(&batched, &scenario, &initial)
        });
        let aggregate = AggregateRuntime::new(protocol.clone());
        measure("epidemic", "aggregate", n, 3, &mut || {
            run_steps(&aggregate, &scenario, &initial)
        });
    }

    // Async rows: the epidemic workload through the message-passing runtime,
    // on the implicit zero-latency transport and on a lossy half-period
    // exponential link. The async runtime pays a heap push/pop plus rng
    // draws *per message* where batched pays O(states²·actions) *per
    // period*, so it can never beat the count-level runtimes and isn't
    // gated against them — its honest envelope is a constant factor of the
    // agent runtime, which does comparable per-process work without the
    // event queue.
    let mut async_ns: Vec<u64> = [1_000u64, 100_000]
        .iter()
        .map(|&n| scaled(n, scale, 100))
        .collect();
    async_ns.dedup();
    let lossy_link =
        LinkModel::new(LatencyModel::Exponential { mean: 180.0 }, 0.01).expect("valid link model");
    for &n in &async_ns {
        let initial = InitialStates::counts(&[n - 1, 1]);
        let reps = if n >= 100_000 { 3 } else { 5 };
        let runtime = AsyncRuntime::new(protocol.clone());
        let zero = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        measure("epidemic", "async_zero", n, reps, &mut || {
            run_steps(&runtime, &zero, &initial)
        });
        let lossy = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7)
            .with_transport(TransportConfig::new(lossy_link))
            .expect("valid transport windows");
        measure("epidemic", "async_latency", n, reps, &mut || {
            run_steps(&runtime, &lossy, &initial)
        });
    }

    // Continuous-time rows: the epidemic workload through the exact SSA and
    // the tau-leap runtimes at N ∈ {10³, 10⁵}. Cost is O(events) — each of
    // the ~N infections is one reaction firing (SSA) or lands inside a
    // Poisson leap (tau-leap) — so the rows track per-event cost, not a
    // count-level period cost.
    let mut continuous_ns: Vec<u64> = [1_000u64, 100_000]
        .iter()
        .map(|&n| scaled(n, scale, 100))
        .collect();
    continuous_ns.dedup();
    for &n in &continuous_ns {
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&[n - 1, 1]);
        let ssa = SsaRuntime::new(protocol.clone());
        measure("epidemic", "ssa", n, 3, &mut || {
            run_steps(&ssa, &scenario, &initial)
        });
        let tau = TauLeapRuntime::new(protocol.clone());
        measure("epidemic", "tau_leap", n, 3, &mut || {
            run_steps(&tau, &scenario, &initial)
        });
    }

    // Sharded rows: the epidemic workload at N = 10⁶ and 10⁷ for S ∈ {1, 8,
    // 64}. S = 1 takes the delegation path (bit-for-bit batched); S > 1 pays
    // the multivariate-hypergeometric exchange plus one batched step per
    // shard.
    let mut sharded_ns = vec![largest_common, count_level_extra];
    sharded_ns.dedup();
    for &n in &sharded_ns {
        let initial = InitialStates::counts(&[n - 1, 1]);
        for (shards, label) in SHARD_SWEEP {
            if shards as u64 > n {
                continue; // smoke scales can shrink N below the shard count
            }
            let scenario = Scenario::new(n as usize, PERIODS)
                .expect("scenario")
                .with_seed(7)
                .with_topology(Topology::sharded(shards, SHARD_MIGRATION).expect("topology"));
            let sharded = ShardedRuntime::new(protocol.clone());
            measure("epidemic", label, n, 3, &mut || {
                run_steps(&sharded, &scenario, &initial)
            });
        }
    }

    // Endemic workload at N = 10⁵, started at the endemic equilibrium with
    // the replication parameters the simulated figures use (β = 4 via b = 2
    // contacts, γ = 0.1, α = 0.01): the equilibrium holds ≈ 8.9 % stashers
    // and 2.5 % receptives — every population large at full scale, so the
    // hybrid runtime must hold count-level fidelity for the whole horizon.
    let endemic_n = scaled(100_000, scale, 100);
    {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.01).expect("valid parameters");
        let endemic_protocol = params.figure1_protocol().expect("figure 1 protocol");
        let counts = params.equilibrium_counts(endemic_n);
        let scenario = Scenario::new(endemic_n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&counts);
        let reps = 5;

        let agent = AgentRuntime::new(endemic_protocol.clone());
        measure("endemic", "agent", endemic_n, reps, &mut || {
            run_steps(&agent, &scenario, &initial)
        });
        let batched = BatchedRuntime::new(endemic_protocol.clone());
        measure("endemic", "batched", endemic_n, reps, &mut || {
            run_steps(&batched, &scenario, &initial)
        });
        let hybrid = HybridRuntime::new(endemic_protocol.clone());
        measure("endemic", "hybrid", endemic_n, reps, &mut || {
            run_steps(&hybrid, &scenario, &initial)
        });

        // Continuous-time rows on the endemic workload (three states, denser
        // channel structure, every population large — no fallback bursts):
        // N ∈ {10³, 10⁵}, sharing the 10⁵ point with the agent gate above.
        for &n in &continuous_ns {
            let scenario = Scenario::new(n as usize, PERIODS)
                .expect("scenario")
                .with_seed(7);
            let initial = InitialStates::counts(&params.equilibrium_counts(n));
            let ssa = SsaRuntime::new(endemic_protocol.clone());
            measure("endemic", "ssa", n, 3, &mut || {
                run_steps(&ssa, &scenario, &initial)
            });
            let tau = TauLeapRuntime::new(endemic_protocol.clone());
            measure("endemic", "tau_leap", n, 3, &mut || {
                run_steps(&tau, &scenario, &initial)
            });
        }
    }

    // Sharded rows for the endemic workload at N = 10⁶: three states and a
    // denser transition structure than the epidemic, so the exchange is
    // costlier per shard-period.
    let endemic_sharded_n = scaled(1_000_000, scale, 100);
    {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.01).expect("valid parameters");
        let endemic_protocol = params.figure1_protocol().expect("figure 1 protocol");
        let counts = params.equilibrium_counts(endemic_sharded_n);
        let initial = InitialStates::counts(&counts);
        for (shards, label) in SHARD_SWEEP {
            if shards as u64 > endemic_sharded_n {
                continue;
            }
            let scenario = Scenario::new(endemic_sharded_n as usize, PERIODS)
                .expect("scenario")
                .with_seed(7)
                .with_topology(Topology::sharded(shards, SHARD_MIGRATION).expect("topology"));
            let sharded = ShardedRuntime::new(endemic_protocol.clone());
            measure("endemic", label, endemic_sharded_n, 3, &mut || {
                run_steps(&sharded, &scenario, &initial)
            });
        }
    }

    let maybe_seconds = |workload: &str, runtime: &str, n: u64| {
        rows.iter()
            .find(|r| r.workload == workload && r.runtime == runtime && r.n == n)
            .map(|r| r.seconds)
    };
    let seconds_of = |workload: &str, runtime: &str, n: u64| {
        maybe_seconds(workload, runtime, n).expect("measured")
    };
    let agent_largest = seconds_of("epidemic", "agent", largest_common);
    let batched_largest = seconds_of("epidemic", "batched", largest_common);
    let speedup = agent_largest / batched_largest;
    let endemic_agent = seconds_of("endemic", "agent", endemic_n);
    let endemic_hybrid = seconds_of("endemic", "hybrid", endemic_n);
    let hybrid_speedup = endemic_agent / endemic_hybrid;
    let sharded_largest = *sharded_ns.last().expect("non-empty sharded sweep");
    let batched_at_sharded = seconds_of("epidemic", "batched", sharded_largest);
    let sharded_s1 = maybe_seconds("epidemic", "sharded_s1", sharded_largest);
    let sharded_s8 = maybe_seconds("epidemic", "sharded_s8", sharded_largest);
    let async_largest = *async_ns.last().expect("non-empty async sweep");
    let async_zero = maybe_seconds("epidemic", "async_zero", async_largest);
    let async_latency = maybe_seconds("epidemic", "async_latency", async_largest);
    let agent_at_async = maybe_seconds("epidemic", "agent", async_largest);
    let continuous_largest = *continuous_ns.last().expect("non-empty continuous sweep");
    let ssa_epidemic = maybe_seconds("epidemic", "ssa", continuous_largest);
    let tau_epidemic = maybe_seconds("epidemic", "tau_leap", continuous_largest);
    let agent_at_continuous = maybe_seconds("epidemic", "agent", continuous_largest);
    let ssa_endemic = maybe_seconds("endemic", "ssa", endemic_n);
    let tau_endemic = maybe_seconds("endemic", "tau_leap", endemic_n);

    println!("\n== summary ==");
    println!(
        "epidemic, largest common N = {largest_common}: agent {agent_largest:.4}s, \
         batched {batched_largest:.4}s, speedup {speedup:.1}x"
    );
    println!(
        "endemic, N = {endemic_n}: agent {endemic_agent:.4}s, \
         hybrid {endemic_hybrid:.4}s, speedup {hybrid_speedup:.1}x"
    );
    println!(
        "sharded epidemic, N = {sharded_largest}: batched {batched_at_sharded:.6}s, \
         S=1 {}s, S=8 {}s",
        sharded_s1.map_or("-".to_string(), |s| format!("{s:.6}")),
        sharded_s8.map_or("-".to_string(), |s| format!("{s:.6}")),
    );
    println!(
        "async epidemic, N = {async_largest}: zero-latency {}s, lossy-latency {}s \
         (agent there: {}s)",
        async_zero.map_or("-".to_string(), |s| format!("{s:.4}")),
        async_latency.map_or("-".to_string(), |s| format!("{s:.4}")),
        agent_at_async.map_or("-".to_string(), |s| format!("{s:.4}")),
    );
    println!(
        "continuous time, N = {continuous_largest}: epidemic SSA {}s / tau-leap {}s \
         (agent there: {}s); endemic SSA {}s / tau-leap {}s (agent: {endemic_agent:.4}s)",
        ssa_epidemic.map_or("-".to_string(), |s| format!("{s:.4}")),
        tau_epidemic.map_or("-".to_string(), |s| format!("{s:.4}")),
        agent_at_continuous.map_or("-".to_string(), |s| format!("{s:.4}")),
        ssa_endemic.map_or("-".to_string(), |s| format!("{s:.4}")),
        tau_endemic.map_or("-".to_string(), |s| format!("{s:.4}")),
    );

    let json_opt = |v: Option<f64>| v.map_or("null".to_string(), |s| format!("{s:.6}"));
    let json = format!(
        "{{\n  \"bench\": \"runtime_sweep\",\n  \"periods\": {PERIODS},\n  \
         \"scale\": {scale},\n  \"results\": [\n{}\n  ],\n  \
         \"largest_common_n\": {largest_common},\n  \
         \"batched_speedup_at_largest\": {speedup:.2},\n  \
         \"endemic_n\": {endemic_n},\n  \
         \"hybrid_speedup_endemic\": {hybrid_speedup:.2},\n  \
         \"sharded_largest_n\": {sharded_largest},\n  \
         \"sharded_s1_seconds\": {},\n  \
         \"sharded_s8_seconds\": {},\n  \
         \"async_largest_n\": {async_largest},\n  \
         \"async_zero_seconds\": {},\n  \
         \"async_latency_seconds\": {},\n  \
         \"continuous_largest_n\": {continuous_largest},\n  \
         \"ssa_epidemic_seconds\": {},\n  \
         \"tau_leap_epidemic_seconds\": {},\n  \
         \"ssa_endemic_seconds\": {},\n  \
         \"tau_leap_endemic_seconds\": {}\n}}\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n"),
        json_opt(sharded_s1),
        json_opt(sharded_s8),
        json_opt(async_zero),
        json_opt(async_latency),
        json_opt(ssa_epidemic),
        json_opt(tau_epidemic),
        json_opt(ssa_endemic),
        json_opt(tau_endemic),
    );
    let out = std::env::var("DPDE_BENCH_OUT").unwrap_or_else(|_| "BENCH_runtime.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: could not write {out}: {e}");
            std::process::exit(2);
        }
    }

    // Perf gate 1: count-batching must beat per-process simulation at scale.
    if speedup <= 1.0 {
        eprintln!(
            "error: batched runtime is not faster than the agent runtime at \
             N = {largest_common} ({batched_largest:.4}s vs {agent_largest:.4}s)"
        );
        std::process::exit(1);
    }
    // Perf gate 2: hybrid must never regress past the agent baseline. At
    // smoke scales the endemic equilibrium legitimately sits below the
    // fidelity threshold (hybrid *is* the agent runtime there), so allow
    // measurement noise; at full scale hybrid stays at count level and must
    // deliver an order of magnitude.
    if endemic_hybrid > endemic_agent * 1.5 {
        eprintln!(
            "error: hybrid runtime regressed past the agent baseline on the \
             endemic workload at N = {endemic_n} \
             ({endemic_hybrid:.4}s vs {endemic_agent:.4}s)"
        );
        std::process::exit(1);
    }
    if scale >= 1.0 && hybrid_speedup < 10.0 {
        eprintln!(
            "error: hybrid runtime is only {hybrid_speedup:.1}x faster than the \
             agent runtime on the endemic workload at N = {endemic_n} (need ≥ 10x)"
        );
        std::process::exit(1);
    }
    // Perf gate 4: the S = 1 delegation path must stay within a small factor
    // of plain batched (it *is* a batched run plus aggregation copies). The
    // absolute floor absorbs timer noise at microsecond magnitudes.
    if let Some(s1) = sharded_s1 {
        let bound = (10.0 * batched_at_sharded).max(0.002);
        if s1 > bound {
            eprintln!(
                "error: sharded S=1 took {s1:.6}s at N = {sharded_largest}, past its \
                 delegation bound of {bound:.6}s (batched: {batched_at_sharded:.6}s)"
            );
            std::process::exit(1);
        }
    }
    if let Some(s8) = sharded_s8 {
        // Perf gate 5: S = 8 costs at most a linear-in-S envelope of batched —
        // this is the O(N)-regression catcher for the exchange path (an
        // accidental per-process term would blow through it at N = 10⁷).
        let bound = (32.0 * 8.0 * batched_at_sharded).max(0.010);
        if s8 > bound {
            eprintln!(
                "error: sharded S=8 took {s8:.6}s at N = {sharded_largest}, past its \
                 linear-in-S bound of {bound:.6}s (batched: {batched_at_sharded:.6}s) — \
                 the exchange path may have grown an O(N) term"
            );
            std::process::exit(1);
        }
        // Perf gate 6: sharded throughput never regresses past the agent
        // baseline (process-periods/sec, compared at each runtime's largest
        // measured N).
        let sharded_pps = (sharded_largest * PERIODS) as f64 / s8;
        let agent_pps = (largest_common * PERIODS) as f64 / agent_largest;
        if sharded_pps < agent_pps {
            eprintln!(
                "error: sharded S=8 throughput ({sharded_pps:.0} process-periods/s at \
                 N = {sharded_largest}) regressed past the agent baseline \
                 ({agent_pps:.0} process-periods/s at N = {largest_common})"
            );
            std::process::exit(1);
        }
    }
    // Perf gate 8 (checked before gate 7 for locality with the continuous
    // rows above): the continuous-time runtimes' honest O(events) envelope.
    // They cannot be gated against the count-level tiers — their period cost
    // grows with the number of reaction firings — so the enforceable bound
    // is a constant factor of the agent runtime at the same N, which does
    // comparable per-process work per period. The factor budgets the
    // per-event channel scan (SSA) and the per-leap propensity/moment pass
    // (tau-leap); the absolute floor absorbs timer noise at smoke scales.
    let continuous_gates = [
        ("epidemic", "ssa", ssa_epidemic, agent_at_continuous),
        ("epidemic", "tau_leap", tau_epidemic, agent_at_continuous),
        ("endemic", "ssa", ssa_endemic, Some(endemic_agent)),
        ("endemic", "tau_leap", tau_endemic, Some(endemic_agent)),
    ];
    for (workload, runtime, seconds, agent_secs) in continuous_gates {
        if let (Some(seconds), Some(agent_secs)) = (seconds, agent_secs) {
            let bound = (25.0 * agent_secs).max(0.005);
            if seconds > bound {
                eprintln!(
                    "error: {runtime} runtime took {seconds:.4}s on the {workload} \
                     workload, past its agent-relative O(events) bound of {bound:.4}s \
                     (agent: {agent_secs:.4}s)"
                );
                std::process::exit(1);
            }
        }
    }
    // Perf gate 7: the async runtime's honest envelope. It cannot be gated
    // against the count-level runtimes — their period cost is independent of
    // N while every async contact is a heap-queued message — so the
    // enforceable bound is a constant factor of the agent runtime, which
    // does the same per-process sampling work without an event queue. The
    // factor budgets the queue (push/pop + total_cmp ordering), the wake
    // ordering, and per-message rng draws; the absolute floor absorbs timer
    // noise at smoke scales.
    if let (Some(zero), Some(agent_secs)) = (async_zero, agent_at_async) {
        let bound = (25.0 * agent_secs).max(0.005);
        if zero > bound {
            eprintln!(
                "error: async zero-latency runtime took {zero:.4}s at N = {async_largest}, \
                 past its agent-relative bound of {bound:.4}s (agent: {agent_secs:.4}s)"
            );
            std::process::exit(1);
        }
    }
}
