//! Runtime performance baseline: periods/sec and process-periods/sec for the
//! four runtime fidelities over a group-size sweep, written to
//! `BENCH_runtime.json` so every PR has a perf trajectory to compare against.
//!
//! Two workloads:
//!
//! * **epidemic** — the paper's motivating protocol (30 periods, one initial
//!   infective) across the N sweep, for agent/batched/hybrid/aggregate. The
//!   hybrid runtime pays membership fidelity for the small-count head and
//!   the extinction window of this workload, so its row sits between agent
//!   and batched.
//! * **endemic** — the Figure 2 replication protocol started at its endemic
//!   equilibrium at N = 10⁵ (all populations large): the hybrid runtime must
//!   stay at count level and beat the agent runtime by ≥ 10× wall-clock.
//!
//! `--scale` / `DPDE_SCALE` shrink the sweep for CI smoke runs; the default
//! reproduces the full N = 10³…10⁶ sweep (plus 10⁷ for the count-level
//! runtimes, whose period cost is independent of N).
//!
//! Exits non-zero (CI perf regression gates) if
//!
//! * the batched runtime is not faster than the agent runtime at the largest
//!   common N,
//! * the hybrid runtime regresses past the agent baseline on the endemic
//!   workload (any scale; small smoke scales legitimately keep hybrid at
//!   membership fidelity, so the bound there is "not slower", with a noise
//!   allowance), or
//! * at full scale (≥ 1), the hybrid runtime is not ≥ 10× faster than the
//!   agent runtime on the endemic workload.

use dpde_bench::{banner, scale_from_args, scaled};
use dpde_core::runtime::{
    AgentRuntime, AggregateRuntime, BatchedRuntime, HybridRuntime, InitialStates, Runtime,
};
use dpde_core::{Protocol, ProtocolCompiler};
use dpde_protocols::endemic::EndemicParams;
use netsim::Scenario;
use odekit::EquationSystemBuilder;
use std::time::Instant;

const PERIODS: u64 = 30;

fn epidemic() -> Protocol {
    let sys = EquationSystemBuilder::new()
        .vars(["x", "y"])
        .term("x", -1.0, &[("x", 1), ("y", 1)])
        .term("y", 1.0, &[("x", 1), ("y", 1)])
        .build()
        .expect("epidemic equations are well-formed");
    ProtocolCompiler::new("epidemic")
        .compile(&sys)
        .expect("epidemic compiles")
}

/// One timed measurement: median wall-clock seconds over `reps` runs.
fn time_runs(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Drives a scenario-driven runtime through the `Runtime` trait without
/// observer overhead (init + steps only — what the fidelity itself costs).
fn run_steps<R: Runtime>(runtime: &R, scenario: &Scenario, initial: &InitialStates) {
    let mut state = runtime.init(scenario, initial).expect("init");
    for _ in 0..scenario.periods() {
        runtime.step(&mut state).expect("step");
    }
}

struct Row {
    workload: &'static str,
    runtime: &'static str,
    n: u64,
    seconds: f64,
}

impl Row {
    fn periods_per_sec(&self) -> f64 {
        PERIODS as f64 / self.seconds
    }

    fn process_periods_per_sec(&self) -> f64 {
        (self.n * PERIODS) as f64 / self.seconds
    }

    fn json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"runtime\": \"{}\", \"n\": {}, \
             \"seconds\": {:.6}, \"periods_per_sec\": {:.1}, \
             \"process_periods_per_sec\": {:.1}}}",
            self.workload,
            self.runtime,
            self.n,
            self.seconds,
            self.periods_per_sec(),
            self.process_periods_per_sec()
        )
    }
}

fn main() {
    let scale = scale_from_args();
    banner(
        "BENCH_runtime",
        "periods/sec per runtime fidelity (epidemic sweep + endemic hybrid gate)",
        scale,
    );

    let protocol = epidemic();
    // Sweep sizes; the count-level runtimes get one extra decade (agent time
    // there is better spent elsewhere — its scaling is already visible).
    let mut common: Vec<u64> = [1_000u64, 10_000, 100_000, 1_000_000]
        .iter()
        .map(|&n| scaled(n, scale, 100))
        .collect();
    common.dedup(); // small scales can collapse adjacent decades onto the floor
    let count_level_extra = scaled(10_000_000, scale, 100);
    let largest_common = *common.last().expect("non-empty sweep");

    let mut rows: Vec<Row> = Vec::new();
    println!("workload,runtime,n,seconds,periods_per_sec,process_periods_per_sec");
    let mut measure = |workload: &'static str,
                       runtime: &'static str,
                       n: u64,
                       reps: usize,
                       f: &mut dyn FnMut()| {
        let seconds = time_runs(reps, f);
        let row = Row {
            workload,
            runtime,
            n,
            seconds,
        };
        println!(
            "{},{},{},{:.6},{:.1},{:.1}",
            workload,
            runtime,
            n,
            seconds,
            row.periods_per_sec(),
            row.process_periods_per_sec()
        );
        rows.push(row);
    };

    for &n in &common {
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&[n - 1, 1]);
        let reps = if n >= 1_000_000 { 3 } else { 5 };

        let agent = AgentRuntime::new(protocol.clone());
        measure("epidemic", "agent", n, reps, &mut || {
            run_steps(&agent, &scenario, &initial)
        });

        let batched = BatchedRuntime::new(protocol.clone());
        measure("epidemic", "batched", n, reps, &mut || {
            run_steps(&batched, &scenario, &initial)
        });

        let hybrid = HybridRuntime::new(protocol.clone());
        measure("epidemic", "hybrid", n, reps, &mut || {
            run_steps(&hybrid, &scenario, &initial)
        });

        let aggregate = AggregateRuntime::new(protocol.clone());
        measure("epidemic", "aggregate", n, reps, &mut || {
            run_steps(&aggregate, &scenario, &initial)
        });
    }
    // Count-level runtimes only: period cost independent of N.
    {
        let n = count_level_extra;
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&[n - 1, 1]);
        let batched = BatchedRuntime::new(protocol.clone());
        measure("epidemic", "batched", n, 3, &mut || {
            run_steps(&batched, &scenario, &initial)
        });
        let aggregate = AggregateRuntime::new(protocol.clone());
        measure("epidemic", "aggregate", n, 3, &mut || {
            run_steps(&aggregate, &scenario, &initial)
        });
    }

    // Endemic workload at N = 10⁵, started at the endemic equilibrium with
    // the replication parameters the simulated figures use (β = 4 via b = 2
    // contacts, γ = 0.1, α = 0.01): the equilibrium holds ≈ 8.9 % stashers
    // and 2.5 % receptives — every population large at full scale, so the
    // hybrid runtime must hold count-level fidelity for the whole horizon.
    let endemic_n = scaled(100_000, scale, 100);
    {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.01).expect("valid parameters");
        let endemic_protocol = params.figure1_protocol().expect("figure 1 protocol");
        let counts = params.equilibrium_counts(endemic_n);
        let scenario = Scenario::new(endemic_n as usize, PERIODS)
            .expect("scenario")
            .with_seed(7);
        let initial = InitialStates::counts(&counts);
        let reps = 5;

        let agent = AgentRuntime::new(endemic_protocol.clone());
        measure("endemic", "agent", endemic_n, reps, &mut || {
            run_steps(&agent, &scenario, &initial)
        });
        let batched = BatchedRuntime::new(endemic_protocol.clone());
        measure("endemic", "batched", endemic_n, reps, &mut || {
            run_steps(&batched, &scenario, &initial)
        });
        let hybrid = HybridRuntime::new(endemic_protocol.clone());
        measure("endemic", "hybrid", endemic_n, reps, &mut || {
            run_steps(&hybrid, &scenario, &initial)
        });
    }

    let seconds_of = |workload: &str, runtime: &str, n: u64| {
        rows.iter()
            .find(|r| r.workload == workload && r.runtime == runtime && r.n == n)
            .map(|r| r.seconds)
            .expect("measured")
    };
    let agent_largest = seconds_of("epidemic", "agent", largest_common);
    let batched_largest = seconds_of("epidemic", "batched", largest_common);
    let speedup = agent_largest / batched_largest;
    let endemic_agent = seconds_of("endemic", "agent", endemic_n);
    let endemic_hybrid = seconds_of("endemic", "hybrid", endemic_n);
    let hybrid_speedup = endemic_agent / endemic_hybrid;

    println!("\n== summary ==");
    println!(
        "epidemic, largest common N = {largest_common}: agent {agent_largest:.4}s, \
         batched {batched_largest:.4}s, speedup {speedup:.1}x"
    );
    println!(
        "endemic, N = {endemic_n}: agent {endemic_agent:.4}s, \
         hybrid {endemic_hybrid:.4}s, speedup {hybrid_speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"runtime_sweep\",\n  \"periods\": {PERIODS},\n  \
         \"scale\": {scale},\n  \"results\": [\n{}\n  ],\n  \
         \"largest_common_n\": {largest_common},\n  \
         \"batched_speedup_at_largest\": {speedup:.2},\n  \
         \"endemic_n\": {endemic_n},\n  \
         \"hybrid_speedup_endemic\": {hybrid_speedup:.2}\n}}\n",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n")
    );
    let out = std::env::var("DPDE_BENCH_OUT").unwrap_or_else(|_| "BENCH_runtime.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: could not write {out}: {e}");
            std::process::exit(2);
        }
    }

    // Perf gate 1: count-batching must beat per-process simulation at scale.
    if speedup <= 1.0 {
        eprintln!(
            "error: batched runtime is not faster than the agent runtime at \
             N = {largest_common} ({batched_largest:.4}s vs {agent_largest:.4}s)"
        );
        std::process::exit(1);
    }
    // Perf gate 2: hybrid must never regress past the agent baseline. At
    // smoke scales the endemic equilibrium legitimately sits below the
    // fidelity threshold (hybrid *is* the agent runtime there), so allow
    // measurement noise; at full scale hybrid stays at count level and must
    // deliver an order of magnitude.
    if endemic_hybrid > endemic_agent * 1.5 {
        eprintln!(
            "error: hybrid runtime regressed past the agent baseline on the \
             endemic workload at N = {endemic_n} \
             ({endemic_hybrid:.4}s vs {endemic_agent:.4}s)"
        );
        std::process::exit(1);
    }
    if scale >= 1.0 && hybrid_speedup < 10.0 {
        eprintln!(
            "error: hybrid runtime is only {hybrid_speedup:.1}x faster than the \
             agent runtime on the endemic workload at N = {endemic_n} (need ≥ 10x)"
        );
        std::process::exit(1);
    }
}
