//! Figure 5: the endemic protocol under a massive failure.
//!
//! N = 100 000 hosts, b = 2, α = 10⁻⁶, γ = 10⁻³, started at equilibrium;
//! 50 % of the hosts crash at period 5000. The numbers of stashers and
//! receptives (among alive hosts) stabilize quickly after the failure: the
//! stasher count drops by about half while the receptive count stays put
//! (half of all contacts become fruitless, doubling the receptive fraction).

use dpde_bench::{banner, compare_line, downsampled_rows, run_endemic, scale_from_args, scaled};
use dpde_protocols::endemic::{EndemicParams, RECEPTIVE, STASH};
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 5",
        "endemic protocol, massive failure of 50% of hosts at t=5000",
        scale,
    );

    let n = scaled(100_000, scale, 2_000) as usize;
    let horizon = scaled(10_000, scale.max(0.2), 2_000);
    let failure_at = horizon / 2;
    let params = EndemicParams::from_contact_count(2, 1e-3, 1e-6).expect("valid parameters");

    let scenario = Scenario::new(n, horizon)
        .unwrap()
        .with_massive_failure(failure_at, 0.5)
        .unwrap()
        .with_seed(5);
    let result = run_endemic(params, &scenario, false);

    println!("period,Rcptv:Alive,Stash:Alive,Avers:Alive");
    for row in downsampled_rows(
        &result.run,
        &dpde_bench::ENDEMIC_SERIES,
        (horizon / 200) as usize,
    ) {
        println!("{}", row.join(","));
    }

    // Summary: stasher and receptive counts before vs after the failure.
    let stash = result.run.state_series(STASH).unwrap();
    let rcptv = result.run.state_series(RECEPTIVE).unwrap();
    let window = (horizon / 10) as usize;
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let pre_range = (failure_at as usize - window)..failure_at as usize;
    let post_range = (horizon as usize - window)..horizon as usize;
    let stash_pre = mean(&stash[pre_range.clone()]);
    let stash_post = mean(&stash[post_range.clone()]);
    let rcptv_pre = mean(&rcptv[pre_range]);
    let rcptv_post = mean(&rcptv[post_range]);

    println!("\n== summary ==");
    compare_line(
        "stashers drop by a factor of about two after the failure",
        "~2x drop",
        &format!(
            "{:.0} -> {:.0} ({:.2}x)",
            stash_pre,
            stash_post,
            stash_pre / stash_post.max(1.0)
        ),
    );
    compare_line(
        "receptive count does not change (contacts become fruitless)",
        "unchanged",
        &format!("{rcptv_pre:.0} -> {rcptv_post:.0}"),
    );
    compare_line(
        "system stabilizes quickly after the failure",
        "yes",
        if stash.last().unwrap() > &(stash_post * 0.5) {
            "yes"
        } else {
            "no"
        },
    );
}
