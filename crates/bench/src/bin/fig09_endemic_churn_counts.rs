//! Figure 9: effect of host churn (A) — state populations stay stable.
//!
//! N = 2000 hosts, b = 32, γ = 0.1, α = 0.005, 6-minute protocol periods,
//! hourly churn of 10–25 % of the system injected from a synthetic
//! Overnet-like availability trace (the real traces are not redistributable;
//! the generator matches the statistics the paper quotes). The numbers of
//! stashers, receptives and averse hosts remain stable, and the number of
//! stashers stays low.

use dpde_bench::{
    banner, churn_scenario, compare_line, run_endemic, scale_from_args, scaled, ENDEMIC_SERIES,
};
use dpde_protocols::endemic::{EndemicParams, STASH};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 9",
        "endemic protocol under host churn: state populations",
        scale,
    );

    let n = scaled(2_000, scale, 500) as usize;
    let hours = scaled(170, scale.max(0.2), 40) as usize;
    let window_hours = 20.min(hours / 2);
    let params = EndemicParams::from_contact_count(32, 0.1, 0.005).expect("valid parameters");

    let scenario = churn_scenario(n, hours, 99);
    let periods_per_hour = scenario.clock().periods_per_hour();
    let result = run_endemic(params, &scenario, false);

    // Print the populations for the final `window_hours` hours (the paper
    // shows hours 150–170).
    println!("hour,Stash:Alive,Rcptv:Alive,Avers:Alive,alive");
    let start_period = (hours - window_hours) as u64 * periods_per_hour;
    let receptives = result.run.state_series(ENDEMIC_SERIES[0]).unwrap();
    let stashers = result.run.state_series(ENDEMIC_SERIES[1]).unwrap();
    let averse = result.run.state_series(ENDEMIC_SERIES[2]).unwrap();
    let alive = result.run.metrics.series("alive").unwrap();
    for p in (start_period..scenario.periods()).step_by(1) {
        let i = p as usize;
        let hour = p as f64 / periods_per_hour as f64;
        let alive_now = alive
            .iter()
            .find(|(ap, _)| *ap == p)
            .map_or(0.0, |(_, v)| *v);
        println!(
            "{hour:.1},{},{},{},{alive_now}",
            stashers[i], receptives[i], averse[i]
        );
    }

    // Stability summary over the window.
    let spread = |s: &[f64]| {
        let tail = &s[start_period as usize..];
        let m = tail.iter().sum::<f64>() / tail.len() as f64;
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        (m, min, max)
    };
    let (sm, smin, smax) = spread(&stashers);
    let (rm, _, _) = spread(&receptives);
    let (am, _, _) = spread(&averse);

    println!("\n== summary ==");
    compare_line(
        "stasher population stays stable and low under churn",
        "stable, low",
        &format!("mean {sm:.0} (min {smin:.0}, max {smax:.0}) of {n} hosts"),
    );
    compare_line(
        "receptive and averse populations remain stable",
        "stable",
        &format!("receptive mean {rm:.0}, averse mean {am:.0}"),
    );
    compare_line(
        "object survives the whole run",
        "yes",
        if result
            .run
            .state_series(STASH)
            .unwrap()
            .iter()
            .all(|&v| v > 0.0)
        {
            "yes"
        } else {
            "no"
        },
    );
}
