//! The adversarial fault-injection experiment: the same total failure budget,
//! spent obliviously versus adaptively.
//!
//! * **LV majority under attack** — a 60/40 Lotka–Volterra majority race
//!   survives an *oblivious* schedule of uniform crashes (uniform victims
//!   preserve the population shares, so the initial majority still wins),
//!   but an *adaptive* [`TargetLargestState`] adversary spending the exact
//!   same budget — `floor(budget · alive)` victims per strike — concentrates
//!   every casualty on whichever proposal currently leads. Each strike
//!   erases the frontrunner's margin, turning a safe race into a coin flip
//!   (or an outright minority takeover): the takeover frequency moves by
//!   tens of percentage points on an identical casualty count.
//! * **Cascading failure** — a [`CascadingFailure`] spark of the same size
//!   as a one-shot crash snowballs through the hazard feedback loop
//!   (`h ← decay·h + gain·crashed_fraction`): with a supercritical gain
//!   each wave of victims feeds a bigger next wave, and the 5 % spark that
//!   is barely visible on its own drives the group to extinction.
//!
//! Both halves run on the count-level batched fidelity via `run_auto`: the
//! adversary hook is served at every tier, and injections are exchangeable
//! draws there. Scaled by `--scale` / `DPDE_SCALE` like every experiment
//! binary.
//!
//! [`TargetLargestState`]: netsim::TargetLargestState
//! [`CascadingFailure`]: netsim::CascadingFailure

use dpde_bench::{banner, scale_from_args, scaled};
use dpde_core::runtime::{
    AliveTracker, CountsRecorder, InitialStates, ResilienceReport, Simulation,
};
use dpde_protocols::lv::LvParams;
use netsim::{CascadingFailure, ObliviousSchedule, Scenario, TargetLargestState};

/// Per-strike budget as a fraction of the alive population, and the strike
/// timetable (shared by both adversaries so the budgets match exactly).
const BUDGET: f64 = 0.25;
const FIRST_STRIKE: u64 = 10;
const STRIKE_EVERY: u64 = 20;
const STRIKES: u32 = 3;

fn main() {
    let scale = scale_from_args();
    banner(
        "exp_adversary",
        "equal failure budgets: oblivious uniform crashes vs adaptive targeting",
        scale,
    );

    let protocol = LvParams::new().protocol().expect("LV protocol");
    let n = scaled(2_000, scale, 300) as usize;
    let periods = scaled(700, scale, 200);
    let reps = scaled(40, scale.max(0.25), 10);
    let split = (n as u64 * 6) / 10; // 60/40
    println!(
        "lv: n={n}, split {split}/{}, {periods} periods, {reps} seeds per arm",
        n as u64 - split
    );
    println!(
        "budget: {STRIKES} strikes x {BUDGET} of alive, at periods \
         {FIRST_STRIKE},{},{}",
        FIRST_STRIKE + STRIKE_EVERY,
        FIRST_STRIKE + 2 * STRIKE_EVERY
    );

    let run = |seed: u64, adaptive: bool| {
        let mut scenario = Scenario::new(n, periods).expect("scenario").with_seed(seed);
        scenario = if adaptive {
            scenario.with_adversary(
                TargetLargestState::new(BUDGET, FIRST_STRIKE, STRIKE_EVERY, STRIKES)
                    .expect("strategy"),
            )
        } else {
            let mut schedule = ObliviousSchedule::new();
            for strike in 0..u64::from(STRIKES) {
                schedule = schedule
                    .crash_uniform_at(FIRST_STRIKE + strike * STRIKE_EVERY, BUDGET)
                    .expect("schedule");
            }
            scenario.with_adversary(schedule)
        };
        Simulation::of(protocol.clone())
            .scenario(scenario)
            .initial(InitialStates::counts(&[split, n as u64 - split, 0]))
            .observe(CountsRecorder::alive_only())
            .observe(AliveTracker::new())
            .observe(ResilienceReport::new())
            .run_auto()
            .expect("adversarial run")
    };

    println!("seed,arm,majority_wins,final_alive,victims_total");
    let mut tally = [0u64; 2]; // majority wins per arm: [oblivious, adaptive]
    let mut casualties = [0.0f64; 2];
    for seed in 0..reps {
        for (arm, adaptive) in [(0usize, false), (1usize, true)] {
            let result = run(seed, adaptive);
            let finals = result.final_counts().expect("counts recorded");
            let majority_wins = finals[0] > finals[1];
            let alive = result.metrics.last("alive").expect("alive series recorded");
            let victims: f64 = result
                .metrics
                .series("resilience:victims")
                .map(|s| s.iter().map(|&(_, v)| v).sum())
                .unwrap_or(0.0);
            tally[arm] += u64::from(majority_wins);
            casualties[arm] += victims;
            println!(
                "{seed},{},{majority_wins},{alive},{victims}",
                if adaptive { "adaptive" } else { "oblivious" }
            );
        }
    }

    // -- Cascading failure: a spark vs the same spark with feedback ---------
    let cascade_periods = scaled(120, scale, 60);
    let spark = 0.05;
    let cascade = |seed: u64, feedback: bool| {
        let adversary = if feedback {
            CascadingFailure::new(10, spark, 2.0, 0.6).expect("cascade")
        } else {
            // Zero gain: the spark fires once and the hazard dies immediately.
            CascadingFailure::new(10, spark, 0.0, 0.0).expect("spark")
        };
        let result = Simulation::of(protocol.clone())
            .scenario(
                Scenario::new(n, cascade_periods)
                    .expect("scenario")
                    .with_seed(seed)
                    .with_adversary(adversary),
            )
            .initial(InitialStates::counts(&[split, n as u64 - split, 0]))
            .observe(AliveTracker::new())
            .run_auto()
            .expect("cascade run");
        result.metrics.last("alive").expect("alive recorded")
    };
    let cascade_reps = reps.min(10);
    let mut spark_alive = 0.0;
    let mut cascade_alive = 0.0;
    for seed in 0..cascade_reps {
        spark_alive += cascade(seed, false);
        cascade_alive += cascade(seed, true);
    }
    spark_alive /= cascade_reps as f64;
    cascade_alive /= cascade_reps as f64;

    println!("\n== summary ==");
    let pct = |wins: u64| 100.0 * wins as f64 / reps as f64;
    println!(
        "oblivious arm: majority wins {}/{reps} ({:.0} %), {:.0} casualties per run",
        tally[0],
        pct(tally[0]),
        casualties[0] / reps as f64
    );
    println!(
        "adaptive arm:  majority wins {}/{reps} ({:.0} %), {:.0} casualties per run",
        tally[1],
        pct(tally[1]),
        casualties[1] / reps as f64
    );
    println!(
        "same budget, different spending: targeting the frontrunner moved the \
         takeover frequency by {:.0} percentage points",
        (pct(tally[0]) - pct(tally[1])).abs()
    );
    println!(
        "cascade: a {spark} spark alone leaves {spark_alive:.0} of {n} alive; \
         with hazard feedback (gain 2.0, decay 0.6) it leaves {cascade_alive:.0}"
    );
}
