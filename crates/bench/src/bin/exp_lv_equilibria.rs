//! Section 4.2.2, Theorem 4: equilibria of the LV system and their stability,
//! plus the convergence complexity.

use dpde_bench::{banner, compare_line, scale_from_args};
use dpde_protocols::lv::LvParams;

fn main() {
    let scale = scale_from_args();
    banner(
        "LV equilibria",
        "Theorem 4 classifications and convergence complexity",
        scale,
    );

    let params = LvParams::new();
    let classes = params.classify_equilibria().unwrap();
    let found = params.equilibria_found_by_search();

    println!("point,paper,measured");
    let rows = [
        ("(0,0)", "unstable", format!("{}", classes[0])),
        ("(1,0)", "stable", format!("{}", classes[1])),
        ("(0,1)", "stable", format!("{}", classes[2])),
        ("(1/3,1/3)", "saddle", format!("{}", classes[3])),
    ];
    for (point, paper, measured) in &rows {
        println!("{point},{paper},{measured}");
    }

    println!("\n== summary ==");
    for (point, paper, measured) in &rows {
        compare_line(&format!("stability of {point}"), paper, measured);
    }
    compare_line(
        "number of equilibria found by multi-start Newton search",
        "4",
        &format!("{}", found.len()),
    );
    compare_line(
        "convergence complexity",
        "O(log N) periods to O(1) minority",
        &format!(
            "predicted {:.0} periods at N = 100 000 (p = 0.01)",
            params.expected_convergence_periods(100_000)
        ),
    );
    let (x, y) = params.convergence_trajectory(0.01, 0.0, 2.0);
    println!(
        "linearized trajectory near (0,1) after 2 time units from u0=0.01: x = {x:.2e}, y = {y:.6}"
    );
}
