//! Section 4.1.3: equilibria of the endemic equations (eq. 2), Theorem 3
//! stability, and the convergence-regime classification.

use dpde_bench::{banner, compare_line, scale_from_args};
use dpde_protocols::endemic::analysis::ConvergenceCase;
use dpde_protocols::endemic::EndemicParams;

fn main() {
    let scale = scale_from_args();
    banner(
        "Endemic equilibria",
        "eq. 2, Theorem 3 and the convergence regimes",
        scale,
    );

    println!("beta,gamma,alpha,N,x_inf,y_inf,z_inf,tau,delta,stable,regime");
    let settings = [
        (4.0, 1.0, 0.01, 1_000.0),    // Figure 2
        (4.0, 0.1, 0.001, 100_000.0), // Figures 5-7
        (64.0, 0.1, 0.005, 2_000.0),  // Figures 9-10
        (1.1, 1.0, 1.0, 1_000.0),     // real-eigenvalue regime
    ];
    for (beta, gamma, alpha, n) in settings {
        let p = EndemicParams::new(beta, gamma, alpha).unwrap();
        let eq = p.equilibria(n).endemic;
        let (tau, delta) = p.trace_det();
        let (case, _) = p.convergence_case();
        let regime = match case {
            ConvergenceCase::DampedOscillation => "stable spiral",
            ConvergenceCase::RealDistinct => "real eigenvalues",
            ConvergenceCase::RealEqual => "repeated eigenvalue",
        };
        println!(
            "{beta},{gamma},{alpha},{n},{:.2},{:.2},{:.2},{tau:.4},{delta:.4},{},{regime}",
            eq[0],
            eq[1],
            eq[2],
            p.endemic_equilibrium_is_stable(),
        );
    }

    println!("\n== summary ==");
    let fig2 = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
    compare_line(
        "Theorem 3: second equilibrium always stable (α, γ > 0, N > γ/β)",
        "stable",
        if fig2.endemic_equilibrium_is_stable() {
            "stable"
        } else {
            "NOT stable"
        },
    );
    compare_line(
        "Figure 2 parameters give a stable spiral",
        "stable spiral",
        if fig2.is_stable_spiral().unwrap_or(false) {
            "stable spiral"
        } else {
            "other"
        },
    );
    let report = fig2.stability_report().unwrap();
    let eigs: Vec<String> = report.eigenvalues.iter().map(|e| format!("{e}")).collect();
    println!(
        "eigenvalues at the endemic equilibrium (Figure 2 parameters): {}",
        eigs.join(", ")
    );
}
