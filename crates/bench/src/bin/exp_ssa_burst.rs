//! Burst-arrival epidemic: the takeoff-time distribution under the
//! continuous-time fidelities versus the period-synchronized baseline.
//!
//! The paper's analysis treats a protocol period as an atomic round: every
//! firing probability is evaluated against start-of-period populations, so
//! within one period an epidemic cannot compound. At the canonical pull
//! epidemic's rates that approximation is visible: once a burst of seed
//! infectives arrives, each new infective starts converting others *within
//! the same period* under the exact continuous-time dynamics, so the
//! half-infected mark arrives measurably earlier than the synchronized tiers
//! predict. This experiment runs the same compiled protocol through three
//! fidelities over a seed ensemble and compares the takeoff-time
//! distributions:
//!
//! * **batched** — the count-level synchronized baseline;
//! * **SSA** — the exact Gillespie next-reaction runtime: takeoff shifts
//!   earlier by a compounding factor the synchronized tiers cannot express;
//! * **tau-leap** — the Poisson-leaping runtime at its default error bound:
//!   takeoff tracks the exact SSA distribution within a fraction of the
//!   SSA-versus-batched divergence.
use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_core::runtime::{
    BatchedRuntime, CountsRecorder, InitialStates, RunResult, Runtime, Simulation, SsaRuntime,
    TauLeapRuntime, DEFAULT_TAU_EPSILON,
};
use dpde_core::Protocol;
use dpde_protocols::epidemic::Epidemic;
use netsim::Scenario;

const PERIODS: u64 = 60;
const RUNS: u64 = 12;
const BURST: u64 = 10;

/// First period at which the infected series reaches `threshold`, or the
/// horizon if it never does.
fn takeoff(result: &RunResult, threshold: f64) -> f64 {
    result
        .state_series("y")
        .ok()
        .and_then(|series| series.iter().position(|&v| v >= threshold))
        .map_or(PERIODS as f64, |p| p as f64)
}

/// Per-seed takeoff periods of one fidelity over the ensemble.
fn takeoffs<R: Runtime>(protocol: &Protocol, n: u64, threshold: f64) -> Vec<f64> {
    (0..RUNS)
        .map(|seed| {
            let result = Simulation::of(protocol.clone())
                .scenario(
                    Scenario::new(n as usize, PERIODS)
                        .expect("valid scenario")
                        .with_seed(900 + seed),
                )
                .initial(InitialStates::counts(&[n - BURST, BURST]))
                .observe(CountsRecorder::new())
                .run::<R>()
                .expect("epidemic run");
            takeoff(&result, threshold)
        })
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn main() {
    let scale = scale_from_args();
    banner(
        "SSA burst epidemic",
        "takeoff-time distribution: exact continuous time vs the synchronized approximation",
        scale,
    );

    let n = scaled(20_000, scale, 1_000);
    let protocol = Epidemic::new().protocol();
    let half = n as f64 / 2.0;

    let batched = takeoffs::<BatchedRuntime>(&protocol, n, half);
    let ssa = takeoffs::<SsaRuntime>(&protocol, n, half);
    let tau = takeoffs::<TauLeapRuntime>(&protocol, n, half);

    println!("seed,batched_takeoff,ssa_takeoff,tau_leap_takeoff");
    for seed in 0..RUNS as usize {
        println!(
            "{},{:.0},{:.0},{:.0}",
            900 + seed,
            batched[seed],
            ssa[seed],
            tau[seed]
        );
    }

    let (mb, ms, mt) = (mean(&batched), mean(&ssa), mean(&tau));
    let divergence = mb - ms;
    let tau_gap = (mt - ms).abs();
    // The tau-leap bound is honest only relative to the effect it
    // approximates: its takeoff must sit much closer to the exact SSA's than
    // the synchronized tiers do (one period of slack for ensemble noise).
    let tau_tolerance = (0.5 * divergence).max(1.0);

    println!("\n== summary ==");
    compare_line(
        "within-period compounding accelerates takeoff",
        "SSA strictly earlier than batched",
        &format!("mean takeoff {ms:.1} (SSA) vs {mb:.1} (batched)"),
    );
    compare_line(
        "tau-leaping tracks the exact dynamics within its bound",
        &format!("within {tau_tolerance:.1} periods of SSA (eps = {DEFAULT_TAU_EPSILON})"),
        &format!("mean takeoff {mt:.1} (tau-leap), gap {tau_gap:.1}"),
    );

    let diverged = divergence >= 1.0;
    let tracked = tau_gap <= tau_tolerance;
    if !diverged || !tracked {
        eprintln!("error: expectation failed (diverged: {diverged}, tracked: {tracked})");
        std::process::exit(1);
    }
}
