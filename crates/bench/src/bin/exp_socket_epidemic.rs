//! The socket-transport robustness experiment: an epidemic running as real
//! worker processes, self-healing through adversarial SIGKILLs.
//!
//! Three arms, all on the Unix-datagram-socket transport backend (each
//! population segment is owned by an actual child process of this binary,
//! re-exec'd through [`maybe_run_worker`]):
//!
//! * **Supervised self-healing** — an adaptive
//!   [`TargetLargestState::striking_workers`] adversary SIGKILLs the worker
//!   owning the densest segment mid-run (twice); the supervisor respawns it
//!   under a bumped generation and the runtime restores its processes from
//!   the kill's period-boundary checkpoint. The run completes, the
//!   [`ResilienceReport`] records the strikes *and* their recoveries, and
//!   the final ensemble mean lands inside the agent-tier Welford envelope —
//!   process murder becomes a transient.
//! * **Unsupervised degradation** — the same strike with supervision off:
//!   the dead segment parks, its traffic resolves as timeouts
//!   (`TransportStats::timed_out` accounting), and the run *completes
//!   degraded* — a quarter of the group gone — rather than hanging or
//!   panicking.
//! * **Loss injection** — a 30 % drop link on top of the socket backend:
//!   virtual drops never get a physical echo leg, and the epidemic still
//!   makes progress to completion.
//!
//! Every simulation carries a wall-clock [`RunDeadline`] so a wedged socket
//! can never hang the harness. Scaled by `--scale` / `DPDE_SCALE` like every
//! experiment binary.
//!
//! [`maybe_run_worker`]: netsim::maybe_run_worker
//! [`TargetLargestState::striking_workers`]: netsim::TargetLargestState::striking_workers
//! [`ResilienceReport`]: dpde_core::runtime::ResilienceReport
//! [`RunDeadline`]: dpde_core::runtime::RunDeadline

use dpde_bench::{banner, scale_from_args, scaled};
use dpde_core::runtime::{
    AgentRuntime, AsyncRuntime, CountsRecorder, InitialStates, ResilienceReport, RunDeadline,
    Runtime, Simulation,
};
use dpde_core::ProtocolCompiler;
use netsim::transport::{LatencyModel, LinkModel, TransportBackend, TransportConfig};
use netsim::{Scenario, SocketConfig, TargetLargestState, WorkerLauncher};
use odekit::parse::parse_system;
use std::time::Duration;

const SEGMENTS: usize = 4;
// The first strike must land before the epidemic saturates: in the compiled
// protocol the susceptibles are the senders, so post-saturation there is no
// traffic left to time out against a parked segment.
const FIRST_STRIKE: u64 = 4;
const STRIKE_EVERY: u64 = 20;
const RESTART_DELAY: u64 = 3;
const WALL_LIMIT: Duration = Duration::from_secs(300);

fn main() {
    // When the supervisor re-execs this binary as a segment worker, this
    // call becomes the whole program; in the coordinator it is a no-op.
    netsim::maybe_run_worker();

    let scale = scale_from_args();
    banner(
        "exp_socket_epidemic",
        "epidemic over real worker processes: SIGKILL strikes, supervised self-healing",
        scale,
    );

    let sys = parse_system("x' = -x*y\ny' = x*y", &[]).expect("epidemic system");
    let protocol = ProtocolCompiler::new("epidemic")
        .compile(&sys)
        .expect("epidemic protocol");
    let n = (scaled(800, scale, 160) / SEGMENTS as u64 * SEGMENTS as u64) as usize;
    let periods = scaled(60, scale, 40);
    let reps = scaled(4, scale.max(0.5), 2);
    let seeds = 10u64;
    println!(
        "n={n} across {SEGMENTS} worker processes, {periods} periods, {reps} seeds per arm, \
         strikes at {FIRST_STRIKE} and {}, restart delay {RESTART_DELAY} periods",
        FIRST_STRIKE + STRIKE_EVERY
    );

    let socket_transport = |supervised: bool| {
        let mut config = TransportConfig::new(
            LinkModel::new(
                LatencyModel::Uniform {
                    min: 0.0,
                    max: 15.0,
                },
                0.0,
            )
            .expect("link"),
        )
        .with_segments(SEGMENTS)
        .expect("segments")
        .with_backend(TransportBackend::UnixSocket(SocketConfig::new(
            WorkerLauncher::CurrentExe,
        )));
        if supervised {
            config = config.with_supervision(RESTART_DELAY);
        }
        config
    };
    let striker = |strikes: u32| {
        TargetLargestState::new(0.25, FIRST_STRIKE, STRIKE_EVERY, strikes)
            .expect("adversary")
            .striking_workers()
    };
    let initial = || InitialStates::counts(&[n as u64 - seeds, seeds]);
    let mut failures: Vec<String> = Vec::new();

    // -- Arm 1: supervised self-healing vs the agent-tier reference ---------
    println!("\nseed,arm,final_infected,victims,recovered");
    let mut socket_finals = Vec::new();
    let mut agent_finals = Vec::new();
    let mut victims_total = 0.0;
    let mut recovered_total = 0.0;
    for seed in 0..reps {
        let scenario = Scenario::new(n, periods)
            .expect("scenario")
            .with_seed(seed)
            .with_transport(socket_transport(true))
            .expect("transport")
            .with_adversary(striker(2));
        let result = Simulation::of(protocol.clone())
            .scenario(scenario)
            .initial(initial())
            .observe(CountsRecorder::new())
            .observe(ResilienceReport::new())
            .deadline(RunDeadline::wall_clock(WALL_LIMIT))
            .run::<AsyncRuntime>()
            .expect("supervised socket run");
        if !result.status.is_completed() {
            failures.push(format!("supervised seed {seed}: {:?}", result.status));
        }
        let infected = result.final_counts().expect("counts")[1];
        let victims: f64 = result
            .metrics
            .series("resilience:victims")
            .map(|s| s.iter().map(|&(_, v)| v).sum())
            .unwrap_or(0.0);
        let recovered = result.metrics.last("resilience:recovered").unwrap_or(0.0);
        if victims <= 0.0 {
            failures.push(format!("supervised seed {seed}: no worker strike landed"));
        }
        socket_finals.push(infected);
        victims_total += victims;
        recovered_total += recovered;
        println!("{seed},supervised,{infected},{victims},{recovered}");

        let reference = Simulation::of(protocol.clone())
            .scenario(Scenario::new(n, periods).expect("scenario").with_seed(seed))
            .initial(initial())
            .observe(CountsRecorder::new())
            .deadline(RunDeadline::wall_clock(WALL_LIMIT))
            .run::<AgentRuntime>()
            .expect("agent reference run");
        let agent_infected = reference.final_counts().expect("counts")[1];
        agent_finals.push(agent_infected);
        println!("{seed},agent-reference,{agent_infected},0,0");
    }
    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (socket_mean, socket_std) = stats(&socket_finals);
    let (agent_mean, agent_std) = stats(&agent_finals);
    let envelope = 6.0 * (socket_std + agent_std) / (reps as f64).sqrt() + 0.02 * n as f64;
    if (socket_mean - agent_mean).abs() > envelope {
        failures.push(format!(
            "supervised socket mean {socket_mean:.1} vs agent mean {agent_mean:.1} \
             outside envelope {envelope:.1}"
        ));
    }
    if recovered_total < reps as f64 {
        failures.push(format!(
            "expected at least one recovery per supervised run, got {recovered_total} \
             over {reps} runs"
        ));
    }

    // -- Arm 2: the same strike without supervision -------------------------
    // Driven by hand so the transport's timeout accounting stays readable.
    let runtime = AsyncRuntime::new(protocol.clone());
    let scenario = Scenario::new(n, periods)
        .expect("scenario")
        .with_seed(1)
        .with_transport(socket_transport(false))
        .expect("transport")
        .with_adversary(striker(1));
    let mut state = runtime.init(&scenario, &initial()).expect("init");
    let mut final_alive = n as u64;
    for _ in 0..periods {
        let ev = runtime.step(&mut state).expect("unsupervised step");
        final_alive = ev.alive;
    }
    let timed_out = state.transport_stats().timed_out();
    let dead_segment = (n / SEGMENTS) as u64;
    println!(
        "\nunsupervised: completed {periods} periods with {final_alive}/{n} alive, \
         {timed_out} transport timeouts"
    );
    if final_alive != n as u64 - dead_segment {
        failures.push(format!(
            "unsupervised run should leave exactly one segment dead: \
             {final_alive}/{n} alive, expected {}",
            n as u64 - dead_segment
        ));
    }
    if timed_out == 0 {
        failures.push("unsupervised run recorded no transport timeouts".into());
    }

    // -- Arm 3: loss injection on the socket link ---------------------------
    // DPDE_SOCKET_DROP overrides the drop probability so CI can push the
    // loss-injected variant harder than the default 30 %.
    let drop_prob = std::env::var("DPDE_SOCKET_DROP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.3);
    let lossy = TransportConfig::new(
        LinkModel::new(
            LatencyModel::Uniform {
                min: 0.0,
                max: 15.0,
            },
            drop_prob,
        )
        .expect("lossy link"),
    )
    .with_segments(SEGMENTS)
    .expect("segments")
    .with_backend(TransportBackend::UnixSocket(SocketConfig::new(
        WorkerLauncher::CurrentExe,
    )));
    let lossy_result = Simulation::of(protocol.clone())
        .scenario(
            Scenario::new(n, periods)
                .expect("scenario")
                .with_seed(2)
                .with_transport(lossy)
                .expect("transport"),
        )
        .initial(initial())
        .observe(CountsRecorder::new())
        .deadline(RunDeadline::wall_clock(WALL_LIMIT))
        .run::<AsyncRuntime>()
        .expect("lossy socket run");
    let lossy_infected = lossy_result.final_counts().expect("counts")[1];
    println!(
        "lossy ({:.0}% drops): status {:?}, {lossy_infected}/{n} infected",
        drop_prob * 100.0,
        lossy_result.status
    );
    if !lossy_result.status.is_completed() {
        failures.push(format!(
            "lossy run did not complete: {:?}",
            lossy_result.status
        ));
    }
    if lossy_infected <= seeds as f64 {
        failures.push(format!(
            "lossy run made no progress: {lossy_infected} infected from {seeds} seeds"
        ));
    }

    println!("\n== summary ==");
    println!(
        "supervised: mean final infected {socket_mean:.1} of {n} \
         (agent reference {agent_mean:.1}, envelope {envelope:.1}), \
         {:.0} SIGKILL victims and {:.0} recoveries per run",
        victims_total / reps as f64,
        recovered_total / reps as f64
    );
    println!(
        "unsupervised: degraded completion with {final_alive}/{n} alive and \
         {timed_out} timeouts — parked, not hung"
    );
    println!(
        "lossy: completed with {lossy_infected:.0}/{n} infected through {:.0}% drops",
        drop_prob * 100.0
    );
    if failures.is_empty() {
        println!("self-healing demonstrated end to end");
    } else {
        for f in &failures {
            println!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
