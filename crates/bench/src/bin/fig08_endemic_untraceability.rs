//! Figure 8: replica untraceability and load balancing.
//!
//! N = 1000 hosts, b = 2, γ = 0.1 (the caption's stable stasher count of
//! 88.63 corresponds to γ/α = 10). The binary prints which hosts are stashers
//! at the end of every protocol period in the window [1000, 1200] — the
//! scatter the paper plots — and summarizes the absence of correlations:
//! replica sets turn over quickly (low consecutive Jaccard similarity), no
//! host stores the replica for long (no long horizontal lines), and load is
//! spread evenly across hosts.

use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_core::runtime::{
    AgentRuntime, CountsRecorder, InitialStates, MembershipTracker, Simulation,
};
use dpde_protocols::endemic::replication::{coverage, load_balance_cv, mean_consecutive_jaccard};
use dpde_protocols::endemic::{EndemicParams, RECEPTIVE, STASH};
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 8",
        "endemic protocol, replica untraceability and load balancing",
        scale,
    );

    let n = scaled(1_000, scale, 300) as usize;
    let window_start = scaled(1_000, scale.max(0.3), 200);
    let window_end = window_start + scaled(200, scale.max(0.3), 100);
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).expect("valid parameters");

    let protocol = params.figure1_protocol().expect("protocol builds");
    let receptive = protocol.require_state(RECEPTIVE).unwrap();
    let stash = protocol.require_state(STASH).unwrap();
    let eq = params.equilibria(n as f64).endemic;
    let counts = [
        eq[0].round() as u64,
        eq[1].round() as u64,
        n as u64 - eq[0].round() as u64 - eq[1].round() as u64,
    ];
    let run = Simulation::of(protocol)
        .scenario(Scenario::new(n, window_end).unwrap().with_seed(88))
        .initial(InitialStates::counts(&counts))
        .rejoin_state(receptive)
        .observe(CountsRecorder::alive_only())
        .observe(MembershipTracker::of(stash))
        .run::<AgentRuntime>()
        .expect("run succeeds");

    // The scatter: one line per (period, stasher id) in the window.
    println!("period,host_id");
    let window: Vec<_> = run
        .tracked_members
        .iter()
        .filter(|(p, _)| *p >= window_start && *p <= window_end)
        .cloned()
        .collect();
    for (period, members) in &window {
        for id in members {
            println!("{period},{}", id.index());
        }
    }

    // Summary statistics over the window.
    let stashers = run.state_series(STASH).unwrap();
    let mean_stashers = stashers[window_start as usize..].iter().sum::<f64>()
        / (stashers.len() - window_start as usize) as f64;
    let jaccard = mean_consecutive_jaccard(&window);
    let cv = load_balance_cv(&run.tracked_members, n);
    let cov = coverage(&run.tracked_members, n);
    let seconds_between_stashers = 360.0 / (params.gamma * mean_stashers);

    println!("\n== summary ==");
    compare_line(
        "stable number of stashers (N = 1000)",
        "88.63",
        &format!("{mean_stashers:.1}"),
    );
    compare_line(
        "a new stasher is created every",
        "40.6 s",
        &format!("{seconds_between_stashers:.1} s"),
    );
    compare_line(
        "stasher set turns over between periods (untraceability)",
        "no time/host-id correlations visible",
        &format!("mean consecutive Jaccard similarity {jaccard:.2}"),
    );
    compare_line(
        "no significant horizontal lines (load balancing)",
        "no host stores a replica for very long",
        &format!(
            "per-host stash-time coefficient of variation {cv:.2}, coverage {:.0}%",
            cov * 100.0
        ),
    );
}
