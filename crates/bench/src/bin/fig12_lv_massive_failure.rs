//! Figure 12: LV protocol under a massive failure.
//!
//! Same initial conditions as Figure 11 (60 000 / 40 000 in a 100 000-process
//! group, p = 0.01), but half the processes, selected at random, crash at
//! period 100. Convergence to the initial majority still occurs, only a
//! little later (the paper observes t = 862).

use dpde_bench::{
    banner, compare_line, downsampled_rows, lv_convergence_period, scale_from_args, scaled,
    LV_SERIES,
};
use dpde_core::runtime::{AgentRuntime, CountsRecorder, InitialStates, Simulation};
use dpde_protocols::lv::LvParams;
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 12",
        "LV protocol, 50% massive failure at t=100",
        scale,
    );

    let n = scaled(100_000, scale, 2_000);
    let horizon = scaled(1_250, scale.max(0.5), 800);
    let params = LvParams::new();
    let zeros = n * 6 / 10;
    let ones = n - zeros;

    let scenario = Scenario::new(n as usize, horizon)
        .unwrap()
        .with_massive_failure(100, 0.5)
        .unwrap()
        .with_seed(12);
    // Alive-only counts: after the failure the plot shows the surviving
    // population converging.
    let result = Simulation::of(params.protocol().expect("valid LV parameters"))
        .scenario(scenario)
        .initial(InitialStates::counts(&[zeros, ones, 0]))
        .observe(CountsRecorder::alive_only())
        .run::<AgentRuntime>()
        .expect("LV run");

    println!("period,State X,State Y,State Z");
    for row in downsampled_rows(&result, &LV_SERIES, (horizon / 100) as usize) {
        println!("{}", row.join(","));
    }

    // Convergence threshold relative to the surviving population.
    let alive_after = n / 2;
    let convergence = lv_convergence_period(&result, (alive_after / 1000).max(1) as f64);
    let xs = result.state_series(LV_SERIES[0]).unwrap();
    let ys = result.state_series(LV_SERIES[1]).unwrap();
    let final_x = xs.last().copied().unwrap_or(0.0);
    let final_y = ys.last().copied().unwrap_or(0.0);

    println!("\n== summary ==");
    compare_line(
        "convergence still occurs despite the massive failure",
        "yes (at t = 862 in the paper)",
        &convergence
            .map(|p| format!("yes, minority below 0.1% of survivors at period {p}"))
            .unwrap_or_else(|| "not reached within the horizon".into()),
    );
    compare_line(
        "the surviving group agrees on the initial majority (x)",
        "yes",
        if final_x > 0.95 * alive_after as f64 && final_y < 0.05 * alive_after as f64 {
            "yes"
        } else {
            "no"
        },
    );
}
