//! Section 4.1.3, "Probabilistic Safety": expected object longevity as a
//! function of the equilibrium replica count.

use dpde_bench::{banner, compare_line, scale_from_args};
use dpde_protocols::endemic::analysis::{longevity, replicas_for_extinction_exponent};

fn main() {
    let scale = scale_from_args();
    banner(
        "Replica longevity",
        "probability of all replicas disappearing, and expected lifetime",
        scale,
    );

    println!("replicas,extinction_probability,expected_periods,expected_years(6-min period)");
    for replicas in [10.0, 20.0, 50.0, 88.63, 100.0] {
        let l = longevity(replicas, 360.0);
        println!(
            "{replicas},{:.3e},{:.3e},{:.3e}",
            l.extinction_probability, l.expected_periods, l.expected_years
        );
    }

    println!("\n== summary ==");
    let fifty = longevity(50.0, 360.0);
    compare_line(
        "N = 1024, 50 replicas, 6-minute period",
        "1.28e10 years",
        &format!("{:.2e} years", fifty.expected_years),
    );
    let hundred = longevity(100.0, 360.0);
    compare_line(
        "N = 2^20, 100 replicas, 6-minute period",
        "1.45e25 years",
        &format!("{:.2e} years", hundred.expected_years),
    );
    compare_line(
        "replicas needed for extinction probability N^-c (c=5, N=1024)",
        "50 = 5·log2(1024)",
        &format!("{}", replicas_for_extinction_exponent(5.0, 1024.0)),
    );
}
