//! Asynchronous epidemic: a multicast over real queued messages, slowed by
//! link latency and halted by a partition.
//!
//! The paper's analysis treats a protocol period as an atomic round: every
//! process samples, every contact resolves instantly. This experiment runs
//! the same compiled epidemic through the async message-passing runtime,
//! where each contact is a message with sampled link latency, and shows the
//! two phenomena the synchronized tiers cannot express:
//!
//! * **latency delays takeoff** — with a two-period mean exponential link,
//!   chains stall waiting for responses and skip wake slots, so the
//!   half-infected mark arrives measurably later than on the instantaneous
//!   link, without any change to per-contact probabilities;
//! * **a partitioned link blocks infection entirely** — the population is
//!   split into two transport segments with all seeds in the second; with
//!   the inter-segment link partitioned for the whole horizon, every
//!   cross-segment probe times out and the first segment ends the run
//!   uninfected.
//!
//! The partition run also streams `LiveMetrics` transport gauges (sent /
//! delivered / dropped and in-flight queue depth), demonstrating mid-run
//! observability of the message layer.

use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_core::runtime::{CountsRecorder, InitialStates, LiveMetrics, Simulation};
use dpde_protocols::epidemic::Epidemic;
use netsim::transport::{LatencyModel, LinkModel, TransportConfig};
use netsim::Scenario;

const PERIODS: u64 = 100;
const SEEDS: u64 = 10;

/// First period at which the infected series reaches `threshold`.
fn takeoff(result: &dpde_core::runtime::RunResult, threshold: f64) -> Option<usize> {
    result
        .state_series("y")
        .map(|series| series.iter().position(|&v| v >= threshold))
        .unwrap_or(None)
}

fn main() {
    let scale = scale_from_args();
    banner(
        "Async epidemic",
        "a multicast over queued messages: latency-delayed takeoff, partition-blocked spread",
        scale,
    );

    let n = scaled(20_000, scale, 1_000);
    let protocol = Epidemic::new().protocol();
    let initial = InitialStates::counts(&[n - SEEDS, SEEDS]);
    let run = |transport: TransportConfig, live: Option<LiveMetrics>| {
        let scenario = Scenario::new(n as usize, PERIODS)
            .expect("valid scenario")
            .with_seed(700)
            .with_transport(transport)
            .expect("valid transport windows");
        let mut sim = Simulation::of(protocol.clone())
            .scenario(scenario)
            .initial(initial.clone())
            .observe(CountsRecorder::new());
        if let Some(live) = live {
            sim = sim.observe(live);
        }
        // The transport model makes run_auto select the async tier.
        sim.run_auto().expect("async epidemic run")
    };

    // Instantaneous link: the period-synchronized baseline, replayed as
    // messages with zero latency.
    let instant = run(TransportConfig::default(), None);

    // A two-period mean exponential link (the default period is 360 s):
    // same probabilities, slower information flow.
    let slow_link =
        LinkModel::new(LatencyModel::Exponential { mean: 720.0 }, 0.0).expect("valid link model");
    let latent = run(TransportConfig::new(slow_link), None);

    let half = n as f64 / 2.0;
    let instant_takeoff = takeoff(&instant, half);
    let latent_takeoff = takeoff(&latent, half);

    // Two transport segments with the inter-segment link partitioned for
    // the whole horizon. Initial states are assigned in contiguous index
    // blocks, so the SEEDS infectives occupy the tail indices — entirely
    // inside segment 1 — and the partition must confine the epidemic there.
    let partitioned_transport = TransportConfig::default()
        .with_segments(2)
        .expect("two segments")
        .with_partition(0, 1, 0, PERIODS)
        .expect("valid partition window");
    let live = LiveMetrics::new();
    let gauges = live.handle();
    let partitioned = run(partitioned_transport, Some(live));
    let final_counts = partitioned.final_counts().expect("recorded run");
    let (survivors, infected) = (final_counts[0], final_counts[1]);
    let reachable = (n - n / 2) as f64; // segment 1's population

    println!("period,instant_infected,latent_infected,partitioned_infected");
    let series =
        |r: &dpde_core::runtime::RunResult| -> Vec<f64> { r.state_series("y").unwrap_or_default() };
    let (si, sl, sp) = (series(&instant), series(&latent), series(&partitioned));
    for p in (0..=PERIODS as usize).step_by(5) {
        let at = |s: &[f64]| s.get(p).copied().unwrap_or(f64::NAN);
        println!("{p},{:.0},{:.0},{:.0}", at(&si), at(&sl), at(&sp));
    }

    println!("\n== summary ==");
    let fmt = |t: Option<usize>| t.map_or("never".to_string(), |p| format!("period {p}"));
    compare_line(
        "zero-latency messages reproduce the synchronized epidemic",
        "half-infected in O(log n) periods",
        &fmt(instant_takeoff),
    );
    compare_line(
        "a two-period-latency link delays takeoff",
        "strictly later half-infected mark",
        &format!(
            "{} vs {} on the instantaneous link",
            fmt(latent_takeoff),
            fmt(instant_takeoff)
        ),
    );
    compare_line(
        "a partitioned link confines the epidemic to the seed segment",
        &format!("{reachable:.0} infected (segment 1 only)"),
        &format!("{infected:.0} infected, {survivors:.0} never reached"),
    );
    compare_line(
        "live transport gauges stream mid-run",
        "cross-partition probes time out as drops",
        &format!(
            "{} sent, {} delivered, {} dropped, {} still queued",
            gauges.sent(),
            gauges.delivered(),
            gauges.dropped(),
            gauges.queue_depth()
        ),
    );

    let latency_delayed = match (instant_takeoff, latent_takeoff) {
        (Some(a), Some(b)) => b > a,
        (Some(_), None) => true, // so slow it never reached half: delayed
        _ => false,
    };
    let confined = infected <= reachable && survivors >= (n / 2) as f64;
    let observable = gauges.dropped() > 0 && gauges.sent() > 0;
    if !latency_delayed || !confined || !observable {
        eprintln!(
            "error: expectation failed (latency_delayed: {latency_delayed}, \
             confined: {confined}, observable: {observable})"
        );
        std::process::exit(1);
    }
}
