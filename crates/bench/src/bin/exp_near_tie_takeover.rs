//! The "near-tie takeover" experiment: the small-count regime the hybrid
//! runtime exists for, measured on both halves of the scenario family.
//!
//! * **LV majority from a 50.5/49.5 split** — the deterministic competition
//!   equations sit near the saddle, so which proposal takes over is decided
//!   by fluctuations of the ~1 % margin; the initial *minority* wins a
//!   non-negligible fraction of runs. Count-level batching alone cannot be
//!   trusted here (the margin is a small count even when N is huge);
//!   `run_auto` serves the runs on the hybrid fidelity.
//! * **Endemic near-extinction** — a group sized so the endemic equilibrium
//!   sustains only a handful of stashers: stochastic fluctuations drive the
//!   replica into the absorbing zero, the probabilistic-safety event of the
//!   longevity analysis.
//!
//! Scaled by `--scale` / `DPDE_SCALE` like every experiment binary; the
//! defaults exercise N = 10⁵ near-tie runs, which stay interactive because
//! the hybrid runtime batches every large-count period.

use dpde_bench::{banner, scale_from_args, scaled};
use dpde_protocols::lv::majority::Decision;
use dpde_protocols::small_count::{NearExtinction, NearTieTakeover};
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "exp_near_tie_takeover",
        "small-count regime: LV near-tie takeover + endemic near-extinction (hybrid fidelity)",
        scale,
    );

    // -- LV majority from a near-tie split ---------------------------------
    let n = scaled(100_000, scale, 400) as usize;
    // Near-tie escapes from the saddle take O(1/p) periods regardless of N,
    // so the horizon floor stays high even at smoke scales.
    let periods = scaled(3_000, scale, 1_800);
    let reps = scaled(10, scale.max(0.4), 4) as u32;
    let family = NearTieTakeover::new(); // 50.5 / 49.5
    let (zeros, ones) = family.split(n as u64);
    println!("lv: n={n}, split {zeros}/{ones}, {periods} periods, {reps} repetitions");
    println!("rep,decision,correct,minority_takeover,convergence_period");
    let mut decided = 0u32;
    let mut takeovers = 0u32;
    for rep in 0..reps {
        let scenario = Scenario::new(n, periods)
            .expect("scenario")
            .with_seed(9_000 + u64::from(rep));
        let run = family.run(&scenario).expect("near-tie run");
        let decision = match run.outcome.decision {
            Decision::Zero => "zero",
            Decision::One => "one",
            Decision::Undecided => "undecided",
        };
        println!(
            "{rep},{decision},{},{},{}",
            run.outcome.correct,
            run.minority_takeover,
            run.outcome
                .convergence_period
                .map_or_else(|| "-".into(), |p| p.to_string()),
        );
        if run.outcome.decision != Decision::Undecided {
            decided += 1;
            if run.minority_takeover {
                takeovers += 1;
            }
        }
    }

    // -- Endemic near-extinction -------------------------------------------
    let target_stashers = 6.0;
    let extinction_family = NearExtinction::new(target_stashers).expect("family");
    let ext_periods = scaled(10_000, scale, 500);
    let ext_reps = scaled(8, scale.max(0.5), 4) as u32;
    println!(
        "\nendemic: n={}, expected stashers {:.1}, {ext_periods} periods, {ext_reps} repetitions",
        extinction_family.group_size(),
        extinction_family.expected_stashers()
    );
    println!("rep,extinct,extinction_period");
    let mut extinct = 0u32;
    for rep in 0..ext_reps {
        let outcome = extinction_family
            .run(ext_periods, 4_000 + u64::from(rep))
            .expect("near-extinction run");
        println!(
            "{rep},{},{}",
            outcome.extinction_period.is_some(),
            outcome
                .extinction_period
                .map_or_else(|| "-".into(), |p| p.to_string()),
        );
        if outcome.extinction_period.is_some() {
            extinct += 1;
        }
    }

    println!("\n== summary ==");
    println!(
        "near-tie: {decided}/{reps} runs decided, {takeovers} minority takeovers \
         ({:.0} % of decided runs)",
        if decided > 0 {
            100.0 * f64::from(takeovers) / f64::from(decided)
        } else {
            0.0
        }
    );
    println!(
        "near-extinction: {extinct}/{ext_reps} runs lost every replica within \
         {ext_periods} periods"
    );
    println!(
        "both halves run on the hybrid fidelity via run_auto: count-batched while \
         every population is large, per-process when the deciding count is small"
    );
}
