//! Figure 2: phase portrait of the endemic protocol (stable spiral).
//!
//! N = 1000, α = 0.01, β = 4 (b = 2), γ = 1.0, started from the paper's seven
//! initial points. Prints, for every initial point, the protocol's (X, Y)
//! trajectory and the ODE trajectory ("analysis"), plus the spiral
//! classification of the non-trivial equilibrium.

use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_bench::{run_endemic_from, ENDEMIC_SERIES};
use dpde_protocols::endemic::EndemicParams;
use netsim::Scenario;
use odekit::analysis::phase_portrait;
use odekit::integrate::Rk4;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 2",
        "phase portrait of the endemic protocol (stable spiral)",
        scale,
    );

    let n = scaled(1000, scale, 200) as u64;
    let periods = scaled(3000, scale.max(0.2), 600);
    let params = EndemicParams::new(4.0, 1.0, 0.01).expect("valid parameters");

    // The paper's seven initial points (X, Y, Z) for N = 1000, rescaled to n.
    let paper_points: [(f64, f64, f64); 7] = [
        (999.0, 1.0, 0.0),
        (0.0, 1.0, 999.0),
        (0.0, 1000.0, 0.0),
        (500.0, 500.0, 0.0),
        (500.0, 1.0, 499.0),
        (1.0, 500.0, 499.0),
        (333.0, 333.0, 334.0),
    ];

    println!("source,label,period,X,Y");
    let mut ode_points = Vec::new();
    for (px, py, pz) in paper_points {
        let _ = pz;
        let f = n as f64 / 1000.0;
        let x0 = ((px * f).round() as u64).min(n);
        let y0 = ((py * f).round().max(1.0) as u64).min(n - x0);
        let counts = [x0, y0, n - x0 - y0];
        let label = format!("({},{},{})", counts[0], counts[1], counts[2]);
        let scenario = Scenario::new(n as usize, periods).unwrap().with_seed(2);
        let run = run_endemic_from(params, &scenario, &counts);
        let xs = run.run.state_series(ENDEMIC_SERIES[0]).unwrap();
        let ys = run.run.state_series(ENDEMIC_SERIES[1]).unwrap();
        for (i, (x, y)) in xs.iter().zip(&ys).enumerate().step_by(5) {
            println!("protocol,{label},{i},{x},{y}");
        }
        ode_points.push(vec![
            counts[0] as f64 / n as f64,
            counts[1] as f64 / n as f64,
            counts[2] as f64 / n as f64,
        ]);
    }

    // The analysis curves: integrate the equations from the same points.
    let portrait = phase_portrait(
        &params.equations(),
        &Rk4::new(0.05),
        &ode_points,
        periods as f64,
    )
    .expect("integration succeeds");
    for (label, series) in portrait.projection(0, 1) {
        for (i, (x, y)) in series.iter().enumerate().step_by(20) {
            println!("analysis,{label},{i},{},{}", x * n as f64, y * n as f64);
        }
    }

    println!("\n== summary ==");
    let eq = params.equilibria(n as f64).endemic;
    compare_line(
        "non-trivial equilibrium is a stable spiral",
        "yes",
        if params.is_stable_spiral().unwrap_or(false) {
            "yes"
        } else {
            "no"
        },
    );
    compare_line(
        "equilibrium (X, Y) the trajectories spiral into (N = 1000)",
        "(250, ~7.4)",
        &format!("({:.0}, {:.1})", eq[0], eq[1]),
    );
}
