//! Group membership: a closed group of `N` processes with per-process liveness.

use crate::error::SimError;
use crate::rng::Rng;
use crate::Result;
use std::fmt;

/// Identifier of a process within a [`Group`] (a dense index in `0..N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A closed group of `N` processes, following the paper's system model: every
/// process knows the maximal membership (all `N − 1` peers), and processes
/// may be crashed (not alive) at any time.
///
/// Liveness is stored as a bitset (one bit per process) with the alive count
/// maintained incrementally, so the protocol runtimes' hot loops can probe
/// liveness with a single shift-and-mask ([`Group::is_alive_unchecked`]) and
/// skip probing entirely while nobody has crashed ([`Group::all_alive`]).
///
/// Sampling a contact is done over the *maximal* membership — exactly as in
/// the paper, where a contact aimed at a crashed host is simply fruitless —
/// via [`Group::random_member`]; [`Group::random_alive`] is also provided for
/// protocols that use a failure detector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Group {
    /// One bit per process, little-endian within each word; bits past `len`
    /// are always zero.
    words: Vec<u64>,
    len: usize,
    alive_count: usize,
}

impl Group {
    /// Creates a group of `n` processes, all initially alive.
    pub fn new(n: usize) -> Self {
        let full_words = n / 64;
        let tail_bits = n % 64;
        let mut words = vec![u64::MAX; full_words];
        if tail_bits > 0 {
            words.push((1u64 << tail_bits) - 1);
        }
        Group {
            words,
            len: n,
            alive_count: n,
        }
    }

    /// Total (maximal) group size `N`, including crashed processes.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Number of currently alive processes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of currently crashed / departed processes.
    pub fn crashed_count(&self) -> usize {
        self.len - self.alive_count
    }

    /// `true` while every process is alive — the runtimes' fast path: one
    /// comparison instead of a per-contact bit probe.
    pub fn all_alive(&self) -> bool {
        self.alive_count == self.len
    }

    /// Fraction of the maximal membership that is currently alive.
    pub fn alive_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.alive_count as f64 / self.len as f64
        }
    }

    /// `true` if process `id` is currently alive.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if `id` is out of range.
    pub fn is_alive(&self, id: ProcessId) -> Result<bool> {
        if id.index() >= self.len {
            return Err(SimError::UnknownProcess {
                id: id.index(),
                group_size: self.len,
            });
        }
        Ok(self.is_alive_unchecked(id.index()))
    }

    /// Infallible liveness probe: a single shift-and-mask on the bitset.
    ///
    /// # Panics
    ///
    /// Panics (by slice indexing) if `index >= size()`.
    #[inline]
    pub fn is_alive_unchecked(&self, index: usize) -> bool {
        (self.words[index >> 6] >> (index & 63)) & 1 != 0
    }

    /// Marks a process as crashed / departed. Idempotent: returns `true` if
    /// the process was alive (i.e. the call changed its liveness).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if `id` is out of range.
    pub fn crash(&mut self, id: ProcessId) -> Result<bool> {
        let i = id.index();
        if i >= self.len {
            return Err(SimError::UnknownProcess {
                id: i,
                group_size: self.len,
            });
        }
        let mask = 1u64 << (i & 63);
        let word = &mut self.words[i >> 6];
        if *word & mask != 0 {
            *word &= !mask;
            self.alive_count -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Marks a process as alive again (crash-recovery / rejoin). Idempotent:
    /// returns `true` if the process was crashed (i.e. the call changed its
    /// liveness).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if `id` is out of range.
    pub fn recover(&mut self, id: ProcessId) -> Result<bool> {
        let i = id.index();
        if i >= self.len {
            return Err(SimError::UnknownProcess {
                id: i,
                group_size: self.len,
            });
        }
        let mask = 1u64 << (i & 63);
        let word = &mut self.words[i >> 6];
        if *word & mask == 0 {
            *word |= mask;
            self.alive_count += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Samples a process uniformly at random from the **maximal** membership
    /// (alive or not), as the paper's protocols do. Returns `None` for an
    /// empty group.
    pub fn random_member(&self, rng: &mut Rng) -> Option<ProcessId> {
        if self.len == 0 {
            None
        } else {
            Some(ProcessId(rng.index(self.len)))
        }
    }

    /// Samples an **alive** process uniformly at random, or `None` if none are
    /// alive. Costs O(1) expected time while a constant fraction is alive,
    /// with a popcount-guided word scan for heavily depleted groups.
    pub fn random_alive(&self, rng: &mut Rng) -> Option<ProcessId> {
        if self.alive_count == 0 {
            return None;
        }
        // Rejection sampling is fast while at least ~1% of the group is alive.
        if self.alive_count * 100 >= self.len {
            loop {
                let candidate = rng.index(self.len);
                if self.is_alive_unchecked(candidate) {
                    return Some(ProcessId(candidate));
                }
            }
        }
        // Fallback: pick the k-th alive process by walking word popcounts.
        Some(ProcessId(self.select_alive(rng.index(self.alive_count))))
    }

    /// Index of the `k`-th (0-based) set bit. `k` must be `< alive_count`.
    fn select_alive(&self, mut k: usize) -> usize {
        for (w, &word) in self.words.iter().enumerate() {
            let ones = word.count_ones() as usize;
            if k < ones {
                let mut bits = word;
                for _ in 0..k {
                    bits &= bits - 1; // clear lowest set bit
                }
                return (w << 6) + bits.trailing_zeros() as usize;
            }
            k -= ones;
        }
        unreachable!("select_alive called with k >= alive_count")
    }

    /// Crashes a uniformly random set of `⌊fraction·alive⌋` currently alive
    /// processes (the paper's "massive failure" events). Returns the crashed
    /// ids.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] if `fraction` is outside `[0, 1]`.
    pub fn crash_random_fraction(
        &mut self,
        rng: &mut Rng,
        fraction: f64,
    ) -> Result<Vec<ProcessId>> {
        crate::error::check_probability("fraction", fraction)?;
        let alive_ids: Vec<ProcessId> = self.alive_ids().collect();
        let k = (fraction * alive_ids.len() as f64).floor() as usize;
        let chosen = crate::stochastic::sample_without_replacement(rng, alive_ids.len(), k);
        let mut crashed = Vec::with_capacity(k);
        for idx in chosen {
            let id = alive_ids[idx];
            self.crash(id)?;
            crashed.push(id);
        }
        Ok(crashed)
    }

    /// Iterator over the ids of currently alive processes.
    pub fn alive_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let base = w << 6;
            std::iter::successors((word != 0).then_some(word), |bits| {
                let rest = bits & (bits - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |bits| ProcessId(base + bits.trailing_zeros() as usize))
        })
    }

    /// Iterator over all process ids in the maximal membership.
    pub fn all_ids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.len).map(ProcessId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_group_is_fully_alive() {
        let g = Group::new(10);
        assert_eq!(g.size(), 10);
        assert_eq!(g.alive_count(), 10);
        assert_eq!(g.crashed_count(), 0);
        assert_eq!(g.alive_fraction(), 1.0);
        assert!(g.all_alive());
        assert_eq!(g.all_ids().count(), 10);
        assert_eq!(g.alive_ids().count(), 10);
    }

    #[test]
    fn crash_and_recover_are_idempotent() {
        let mut g = Group::new(5);
        g.crash(ProcessId(2)).unwrap();
        g.crash(ProcessId(2)).unwrap();
        assert_eq!(g.alive_count(), 4);
        assert!(!g.is_alive(ProcessId(2)).unwrap());
        assert!(!g.all_alive());
        g.recover(ProcessId(2)).unwrap();
        g.recover(ProcessId(2)).unwrap();
        assert_eq!(g.alive_count(), 5);
        assert!(g.is_alive(ProcessId(2)).unwrap());
        assert!(g.all_alive());
    }

    #[test]
    fn out_of_range_ids_error() {
        let mut g = Group::new(3);
        assert!(g.is_alive(ProcessId(3)).is_err());
        assert!(g.crash(ProcessId(7)).is_err());
        assert!(g.recover(ProcessId(7)).is_err());
    }

    #[test]
    fn bitset_covers_word_boundaries() {
        // Sizes straddling the 64-bit word boundary behave identically.
        for n in [63usize, 64, 65, 128, 130] {
            let mut g = Group::new(n);
            assert_eq!(g.alive_ids().count(), n);
            for i in (0..n).step_by(2) {
                g.crash(ProcessId(i)).unwrap();
            }
            let crashed = n.div_ceil(2);
            assert_eq!(g.alive_count(), n - crashed, "n = {n}");
            for i in 0..n {
                assert_eq!(g.is_alive_unchecked(i), i % 2 == 1, "n = {n}, i = {i}");
            }
            let ids: Vec<usize> = g.alive_ids().map(ProcessId::index).collect();
            let expected: Vec<usize> = (0..n).filter(|i| i % 2 == 1).collect();
            assert_eq!(ids, expected, "n = {n}");
        }
    }

    #[test]
    fn random_member_includes_crashed() {
        let mut g = Group::new(10);
        let mut rng = Rng::seed_from(1);
        for i in 0..9 {
            g.crash(ProcessId(i)).unwrap();
        }
        // Only process 9 is alive; random_member still returns crashed ones.
        let mut saw_crashed = false;
        for _ in 0..200 {
            let m = g.random_member(&mut rng).unwrap();
            if m.index() != 9 {
                saw_crashed = true;
            }
        }
        assert!(saw_crashed);
        // random_alive only ever returns the survivor.
        for _ in 0..50 {
            assert_eq!(g.random_alive(&mut rng), Some(ProcessId(9)));
        }
    }

    #[test]
    fn random_alive_none_when_all_crashed() {
        let mut g = Group::new(4);
        let mut rng = Rng::seed_from(2);
        for i in 0..4 {
            g.crash(ProcessId(i)).unwrap();
        }
        assert_eq!(g.random_alive(&mut rng), None);
        assert_eq!(Group::new(0).random_member(&mut rng), None);
        assert_eq!(Group::new(0).alive_fraction(), 0.0);
    }

    #[test]
    fn massive_failure_crashes_exact_fraction() {
        let mut g = Group::new(1000);
        let mut rng = Rng::seed_from(3);
        let crashed = g.crash_random_fraction(&mut rng, 0.5).unwrap();
        assert_eq!(crashed.len(), 500);
        assert_eq!(g.alive_count(), 500);
        // Crashing 50% of the survivors leaves 250.
        let crashed2 = g.crash_random_fraction(&mut rng, 0.5).unwrap();
        assert_eq!(crashed2.len(), 250);
        assert_eq!(g.alive_count(), 250);
        assert!(g.crash_random_fraction(&mut rng, 1.5).is_err());
    }

    #[test]
    fn random_alive_sparse_fallback() {
        let mut g = Group::new(10_000);
        let mut rng = Rng::seed_from(4);
        // Crash all but 5 (0.05% alive → below the 1% rejection threshold).
        for i in 0..9_995 {
            g.crash(ProcessId(i)).unwrap();
        }
        for _ in 0..100 {
            let id = g.random_alive(&mut rng).unwrap();
            assert!(id.index() >= 9_995);
        }
        // The popcount selector hits every survivor.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(g.random_alive(&mut rng).unwrap().index());
        }
        assert_eq!(seen.len(), 5, "all survivors reachable");
    }

    #[test]
    fn process_id_display_and_conversion() {
        let id: ProcessId = 7.into();
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "p7");
    }
}
