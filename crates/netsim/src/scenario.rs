//! Experiment scenarios: everything describing one simulation run.

use crate::adversary::{Adversary, AdversaryHandle};
use crate::churn::{ChurnEvent, ChurnTrace};
use crate::clock::PeriodClock;
use crate::error::SimError;
use crate::failure::{FailureModel, FailureSchedule};
use crate::group::Group;
use crate::network::LossConfig;
use crate::rng::Rng;
use crate::topology::{ShardFailure, ShardPartition, Topology};
use crate::transport::TransportConfig;
use crate::Result;

/// A complete description of the environment for one simulation run:
/// group size, horizon, failure injection, churn, network losses, protocol
/// period and PRNG seed.
///
/// The protocol runtimes in `dpde-core` consume a `Scenario` to drive their
/// execution; the experiment harness builds one per figure of the paper.
///
/// # Examples
///
/// ```
/// use netsim::Scenario;
///
/// // The paper's Figure 5 environment: 100 000 hosts, 10 000 periods,
/// // half of them crashing at period 5000.
/// let scenario = Scenario::new(100_000, 10_000)?
///     .with_massive_failure(5_000, 0.5)?
///     .with_seed(1);
/// assert_eq!(scenario.group_size(), 100_000);
/// # Ok::<(), netsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    group_size: usize,
    periods: u64,
    seed: u64,
    loss: LossConfig,
    failure_schedule: FailureSchedule,
    failure_model: FailureModel,
    churn_events: Vec<ChurnEvent>,
    initial_availability: Option<Vec<bool>>,
    clock: PeriodClock,
    topology: Topology,
    shard_failures: Vec<ShardFailure>,
    shard_partitions: Vec<ShardPartition>,
    transport: Option<TransportConfig>,
    adversary: Option<AdversaryHandle>,
}

impl Scenario {
    /// Creates a scenario of `group_size` processes running for `periods`
    /// protocol periods, with a reliable network, no failures, no churn, a
    /// 6-minute protocol period and seed 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the group size or horizon is zero.
    pub fn new(group_size: usize, periods: u64) -> Result<Self> {
        if group_size == 0 {
            return Err(SimError::InvalidConfig {
                name: "group_size",
                reason: "group must contain at least one process".into(),
            });
        }
        if periods == 0 {
            return Err(SimError::InvalidConfig {
                name: "periods",
                reason: "scenario must run for at least one period".into(),
            });
        }
        Ok(Scenario {
            group_size,
            periods,
            seed: 0,
            loss: LossConfig::reliable(),
            failure_schedule: FailureSchedule::new(),
            failure_model: FailureModel::none(),
            churn_events: Vec::new(),
            initial_availability: None,
            clock: PeriodClock::six_minutes(),
            topology: Topology::WellMixed,
            shard_failures: Vec::new(),
            shard_partitions: Vec::new(),
            transport: None,
            adversary: None,
        })
    }

    /// Rejects events scheduled at or beyond the run horizon: they would
    /// never fire, which almost always means a typo in the period or the
    /// horizon rather than an intentionally inert event.
    fn check_horizon(&self, name: &'static str, period: u64) -> Result<()> {
        if period >= self.periods {
            return Err(SimError::InvalidConfig {
                name,
                reason: format!(
                    "event at period {period} lies beyond the run horizon of {} periods \
                     (last period is {})",
                    self.periods,
                    self.periods - 1
                ),
            });
        }
        Ok(())
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the horizon, keeping everything else — useful when sweeping
    /// run lengths or deriving ensemble variants from a template scenario.
    ///
    /// # Errors
    ///
    /// Returns an error if `periods` is zero, or if shrinking the horizon
    /// would strand an already-scheduled event (failure, shard failure or
    /// partition start) beyond it.
    pub fn with_periods(mut self, periods: u64) -> Result<Self> {
        if periods == 0 {
            return Err(SimError::InvalidConfig {
                name: "periods",
                reason: "scenario must run for at least one period".into(),
            });
        }
        self.periods = periods;
        for (period, _) in self.failure_schedule.events() {
            self.check_horizon("failure_schedule", *period)?;
        }
        for f in &self.shard_failures {
            self.check_horizon("shard_failure", f.period)?;
        }
        for p in &self.shard_partitions {
            self.check_horizon("shard_partition", p.from_period)?;
        }
        if let Some(transport) = &self.transport {
            for p in transport.partitions() {
                self.check_horizon("link_partition", p.from_period)?;
            }
        }
        Ok(self)
    }

    /// Sets the network loss configuration.
    #[must_use]
    pub fn with_loss(mut self, loss: LossConfig) -> Self {
        self.loss = loss;
        self
    }

    /// Adds a massive-failure event (crash a fraction of alive hosts at the
    /// given period).
    ///
    /// # Errors
    ///
    /// Returns an error if the fraction lies outside `[0, 1]` or the period
    /// lies at or beyond the run horizon (the event would never fire).
    pub fn with_massive_failure(mut self, period: u64, fraction: f64) -> Result<Self> {
        crate::error::check_probability("fraction", fraction)?;
        self.check_horizon("massive_failure", period)?;
        self.failure_schedule.add(
            period,
            crate::failure::FailureEvent::MassiveFailure { fraction },
        );
        Ok(self)
    }

    /// Replaces the whole failure schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if any scheduled event lies at or beyond the run
    /// horizon (it would never fire).
    pub fn with_failure_schedule(mut self, schedule: FailureSchedule) -> Result<Self> {
        for (period, _) in schedule.events() {
            self.check_horizon("failure_schedule", *period)?;
        }
        self.failure_schedule = schedule;
        Ok(self)
    }

    /// Sets a probabilistic per-period crash/recovery model.
    #[must_use]
    pub fn with_failure_model(mut self, model: FailureModel) -> Self {
        self.failure_model = model;
        self
    }

    /// Sets the protocol-period clock.
    #[must_use]
    pub fn with_clock(mut self, clock: PeriodClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the population topology (well-mixed vs sharded). The default is
    /// [`Topology::WellMixed`], under which every runtime behaves exactly as
    /// it always has; a sharded topology selects the sharded runtime tier.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Adds a massive-failure event confined to one shard: at `period`,
    /// `fraction` of that shard's alive processes crash. Requires a sharded
    /// topology at run time (the shard index is validated against the shard
    /// count when the run is initialized).
    ///
    /// # Errors
    ///
    /// Returns an error if the fraction lies outside `[0, 1]` or the period
    /// lies at or beyond the run horizon (the event would never fire).
    pub fn with_shard_massive_failure(
        mut self,
        period: u64,
        shard: usize,
        fraction: f64,
    ) -> Result<Self> {
        crate::error::check_probability("fraction", fraction)?;
        self.check_horizon("shard_failure", period)?;
        self.shard_failures.push(ShardFailure {
            period,
            shard,
            fraction,
        });
        Ok(self)
    }

    /// Partitions one shard for the inclusive period window
    /// `from_period ..= to_period`: no process migrates into or out of it
    /// while the partition is in force.
    ///
    /// # Errors
    ///
    /// Returns an error if the window is empty (`from_period > to_period`),
    /// starts at or beyond the run horizon (it would never take effect), or
    /// overlaps a partition window already configured for the same shard
    /// (the windows would silently shadow each other).
    pub fn with_shard_partition(
        mut self,
        shard: usize,
        from_period: u64,
        to_period: u64,
    ) -> Result<Self> {
        if from_period > to_period {
            return Err(SimError::InvalidConfig {
                name: "shard_partition",
                reason: format!("window {from_period}..={to_period} is empty"),
            });
        }
        self.check_horizon("shard_partition", from_period)?;
        if let Some(existing) = self
            .shard_partitions
            .iter()
            .find(|p| p.shard == shard && from_period <= p.to_period && p.from_period <= to_period)
        {
            return Err(SimError::InvalidConfig {
                name: "shard_partition",
                reason: format!(
                    "window {from_period}..={to_period} overlaps the existing window {}..={} \
                     on shard {shard}",
                    existing.from_period, existing.to_period
                ),
            });
        }
        self.shard_partitions.push(ShardPartition {
            shard,
            from_period,
            to_period,
        });
        Ok(self)
    }

    /// Installs a churn trace: hour-0 availability is applied to the group at
    /// start-up, and the hourly changes are spread over protocol periods.
    ///
    /// # Errors
    ///
    /// Returns an error if the trace covers a different number of hosts than
    /// the scenario.
    pub fn with_churn_trace(mut self, trace: &ChurnTrace, rng: &mut Rng) -> Result<Self> {
        if trace.hosts() != self.group_size {
            return Err(SimError::InvalidConfig {
                name: "churn_trace",
                reason: format!(
                    "trace covers {} hosts but the scenario has {}",
                    trace.hosts(),
                    self.group_size
                ),
            });
        }
        self.initial_availability = Some(trace.initial_availability().to_vec());
        self.churn_events = trace.spread_over_periods(self.clock.periods_per_hour(), rng);
        Ok(self)
    }

    /// The maximal group size `N`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The number of protocol periods to run.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// The PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The network loss configuration.
    pub fn loss(&self) -> &LossConfig {
        &self.loss
    }

    /// The scheduled failure events.
    pub fn failure_schedule(&self) -> &FailureSchedule {
        &self.failure_schedule
    }

    /// The probabilistic crash/recovery model.
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure_model
    }

    /// The per-period churn events.
    pub fn churn_events(&self) -> &[ChurnEvent] {
        &self.churn_events
    }

    /// The protocol-period clock.
    pub fn clock(&self) -> &PeriodClock {
        &self.clock
    }

    /// The population topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shard-targeted massive failures.
    pub fn shard_failures(&self) -> &[ShardFailure] {
        &self.shard_failures
    }

    /// The shard partition windows.
    pub fn shard_partitions(&self) -> &[ShardPartition] {
        &self.shard_partitions
    }

    /// Attaches a message-transport model: per-link latency distributions,
    /// drop probability and partition windows. A scenario carrying one is
    /// served by the asynchronous message-passing runtime (`run_auto` routes
    /// it there); the period-synchronized runtimes reject it loudly.
    ///
    /// # Errors
    ///
    /// Returns an error if any [`LinkPartition`](crate::LinkPartition)
    /// window starts at or beyond the run horizon (the window would never
    /// open — almost always a typo in the period or the horizon). Windows
    /// that open in-horizon but extend past it are fine: they simply stay in
    /// force to the end of the run, mirroring shard-partition semantics.
    pub fn with_transport(mut self, transport: TransportConfig) -> Result<Self> {
        for p in transport.partitions() {
            self.check_horizon("link_partition", p.from_period)?;
        }
        self.transport = Some(transport);
        Ok(self)
    }

    /// The transport model, if one is attached.
    pub fn transport(&self) -> Option<&TransportConfig> {
        self.transport.as_ref()
    }

    /// Attaches an adaptive fault-injection adversary. Once per period —
    /// after the scenario's own scheduled events — every runtime shows the
    /// adversary the live run state (per-state counts, shard counts,
    /// transport gauges) and applies the [`Injection`](crate::Injection)s it
    /// emits. Adversary *decisions* draw from a dedicated PRNG stream
    /// derived from the scenario seed, so attaching a strategy that ends up
    /// injecting nothing leaves the run bit-for-bit unchanged.
    ///
    /// The aggregate (mean-field) runtime rejects scenarios carrying an
    /// adversary, exactly as it rejects every other failure mechanism.
    #[must_use]
    pub fn with_adversary(mut self, adversary: impl Adversary + 'static) -> Self {
        self.adversary = Some(AdversaryHandle::new(adversary));
        self
    }

    /// The attached adversary, if any.
    pub fn adversary(&self) -> Option<&AdversaryHandle> {
        self.adversary.as_ref()
    }

    /// `true` if this scenario models the message layer explicitly (link
    /// latency / drops / partitions) and therefore needs the asynchronous
    /// runtime.
    pub fn has_link_models(&self) -> bool {
        self.transport.is_some()
    }

    /// `true` if any shard-targeted event (failure or partition) is
    /// configured.
    pub fn has_shard_events(&self) -> bool {
        !self.shard_failures.is_empty() || !self.shard_partitions.is_empty()
    }

    /// `true` if `shard` is partitioned at `period` (no migration in or out).
    pub fn is_shard_partitioned(&self, shard: usize, period: u64) -> bool {
        self.shard_partitions
            .iter()
            .any(|p| p.shard == shard && p.active_at(period))
    }

    /// `true` if this scenario can only be served by a shard-aware runtime:
    /// either the topology is explicitly sharded or a shard-targeted event is
    /// configured. Well-mixed runtimes reject such scenarios loudly.
    pub fn needs_sharding(&self) -> bool {
        self.topology.is_sharded() || self.has_shard_events()
    }

    /// `true` if anything in this scenario can change process liveness:
    /// scheduled failure events (global or shard-targeted), a probabilistic
    /// crash/recovery model, churn events or a partial hour-0 availability.
    /// An attached adversary is deliberately *not* counted: its injections
    /// ride on a separate hook in every runtime's step path, so the
    /// scheduled-event fast paths stay unchanged.
    pub fn has_liveness_events(&self) -> bool {
        !self.failure_schedule.is_empty()
            || !self.shard_failures.is_empty()
            || self.failure_model.crash_prob() > 0.0
            || self.failure_model.recover_prob() > 0.0
            || !self.churn_events.is_empty()
            || self
                .initial_availability
                .as_ref()
                .is_some_and(|avail| avail.iter().any(|alive| !alive))
    }

    /// `true` if the environment can be simulated without per-host identity —
    /// the condition for running it on a count-level runtime such as
    /// `BatchedRuntime`: the failure schedule may contain only
    /// massive-failure events (which hit a uniformly random subset), and no
    /// churn trace is installed. A probabilistic [`FailureModel`] is fine:
    /// it treats processes exchangeably.
    pub fn count_level_compatible(&self) -> bool {
        !self.failure_schedule.has_identity_events()
            && self.churn_events.is_empty()
            && self.initial_availability.is_none()
    }

    /// Builds the initial [`Group`] (applying hour-0 churn availability if a
    /// trace was installed).
    pub fn build_group(&self) -> Group {
        let mut group = Group::new(self.group_size);
        if let Some(avail) = &self.initial_availability {
            for (i, &alive) in avail.iter().enumerate() {
                if !alive {
                    // Ids come straight from the trace and are in range.
                    let _ = group.crash(crate::group::ProcessId(i));
                }
            }
        }
        group
    }

    /// Creates the root PRNG for this scenario.
    pub fn build_rng(&self) -> Rng {
        Rng::seed_from(self.seed)
    }

    /// Applies everything scheduled for `period` (failure events, probabilistic
    /// failures, churn) to the group. Returns `(crashed_or_left, recovered_or_joined)`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the failure schedule (invalid fractions, ids).
    pub fn apply_period_events(
        &self,
        period: u64,
        group: &mut Group,
        rng: &mut Rng,
    ) -> Result<(Vec<crate::group::ProcessId>, Vec<crate::group::ProcessId>)> {
        let (mut down, mut recovered) = self.failure_schedule.apply(period, group, rng)?;
        let (crashed, model_recovered) = self.failure_model.step(group, rng)?;
        down.extend(crashed);
        recovered.extend(model_recovered);
        for ev in self.churn_events.iter().filter(|e| e.period == period) {
            for id in &ev.leaves {
                if group.crash(*id)? {
                    down.push(*id);
                }
            }
            for id in &ev.joins {
                if group.recover(*id)? {
                    recovered.push(*id);
                }
            }
        }
        Ok((down, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::SyntheticChurnConfig;
    use crate::group::ProcessId;

    #[test]
    fn construction_and_validation() {
        assert!(Scenario::new(0, 10).is_err());
        assert!(Scenario::new(10, 0).is_err());
        let s = Scenario::new(100, 50).unwrap().with_seed(7);
        assert_eq!(s.group_size(), 100);
        assert_eq!(s.periods(), 50);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.loss().connection_failure(), 0.0);
        assert!(s.failure_schedule().is_empty());
        assert_eq!(s.churn_events().len(), 0);
        assert_eq!(s.clock().period_secs(), 360.0);
        assert_eq!(s.build_group().alive_count(), 100);
        let _ = s.build_rng();
    }

    #[test]
    fn massive_failure_applies_at_period() {
        let s = Scenario::new(1000, 100)
            .unwrap()
            .with_massive_failure(50, 0.5)
            .unwrap();
        let mut group = s.build_group();
        let mut rng = s.build_rng();
        let (down, up) = s.apply_period_events(49, &mut group, &mut rng).unwrap();
        assert!(down.is_empty() && up.is_empty());
        let (down, _) = s.apply_period_events(50, &mut group, &mut rng).unwrap();
        assert_eq!(down.len(), 500);
        assert_eq!(group.alive_count(), 500);
        assert!(Scenario::new(10, 10)
            .unwrap()
            .with_massive_failure(1, 1.5)
            .is_err());
    }

    #[test]
    fn failure_model_is_applied_every_period() {
        let s = Scenario::new(1000, 10)
            .unwrap()
            .with_failure_model(FailureModel::new(0.5, 0.0).unwrap());
        let mut group = s.build_group();
        let mut rng = s.build_rng();
        s.apply_period_events(0, &mut group, &mut rng).unwrap();
        assert!(group.alive_count() < 600);
    }

    #[test]
    fn churn_trace_requires_matching_size_and_applies_events() {
        let cfg = SyntheticChurnConfig {
            hosts: 200,
            hours: 5,
            mean_availability: 0.5,
            churn_min: 0.2,
            churn_max: 0.3,
        };
        let mut rng = Rng::seed_from(3);
        let trace = cfg.generate(&mut rng).unwrap();
        // Mismatched size is rejected.
        assert!(Scenario::new(100, 100)
            .unwrap()
            .with_churn_trace(&trace, &mut rng)
            .is_err());
        let s = Scenario::new(200, 100)
            .unwrap()
            .with_churn_trace(&trace, &mut rng)
            .unwrap();
        let group = s.build_group();
        // Hour-0 availability applied: roughly half alive.
        assert!(group.alive_count() > 60 && group.alive_count() < 140);
        // Applying all periods' events keeps the group within the maximal size.
        let mut group = s.build_group();
        let mut rng2 = s.build_rng();
        let mut total_changes = 0;
        for p in 0..s.periods() {
            let (down, up) = s.apply_period_events(p, &mut group, &mut rng2).unwrap();
            total_changes += down.len() + up.len();
        }
        assert!(total_changes > 0, "churn events should fire");
        assert!(group.alive_count() <= 200);
    }

    #[test]
    fn liveness_and_count_level_classification() {
        let plain = Scenario::new(100, 10).unwrap();
        assert!(!plain.has_liveness_events());
        assert!(plain.count_level_compatible());

        // Massive failures change liveness but stay count-level compatible.
        let massive = Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(5, 0.5)
            .unwrap();
        assert!(massive.has_liveness_events());
        assert!(massive.count_level_compatible());

        // A probabilistic failure model is exchangeable, hence count-level.
        let model = Scenario::new(100, 10)
            .unwrap()
            .with_failure_model(FailureModel::new(0.01, 0.02).unwrap());
        assert!(model.has_liveness_events());
        assert!(model.count_level_compatible());

        // Per-id events need host identity.
        let mut schedule = FailureSchedule::new();
        schedule.add(1, crate::failure::FailureEvent::Crash(ProcessId(3)));
        let with_id = Scenario::new(100, 10)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap();
        assert!(with_id.has_liveness_events());
        assert!(!with_id.count_level_compatible());

        // Churn traces are id-based too.
        let cfg = SyntheticChurnConfig {
            hosts: 100,
            hours: 2,
            mean_availability: 0.8,
            churn_min: 0.1,
            churn_max: 0.2,
        };
        let mut rng = Rng::seed_from(1);
        let trace = cfg.generate(&mut rng).unwrap();
        let churny = Scenario::new(100, 20)
            .unwrap()
            .with_churn_trace(&trace, &mut rng)
            .unwrap();
        assert!(churny.has_liveness_events());
        assert!(!churny.count_level_compatible());
    }

    #[test]
    fn topology_and_shard_events() {
        use crate::topology::Topology;
        let plain = Scenario::new(100, 10).unwrap();
        assert_eq!(plain.topology(), &Topology::WellMixed);
        assert!(!plain.needs_sharding());
        assert!(!plain.has_shard_events());

        let sharded = Scenario::new(1_000, 10)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.05).unwrap());
        assert!(sharded.needs_sharding());
        assert!(!sharded.has_shard_events());
        assert_eq!(sharded.topology().shard_count(), 4);
        // Topology alone does not change liveness or identity needs.
        assert!(!sharded.has_liveness_events());
        assert!(sharded.count_level_compatible());

        let with_events = sharded
            .with_shard_massive_failure(5, 2, 0.5)
            .unwrap()
            .with_shard_partition(1, 3, 7)
            .unwrap();
        assert!(with_events.has_shard_events());
        assert!(with_events.needs_sharding());
        assert!(with_events.has_liveness_events());
        assert_eq!(with_events.shard_failures().len(), 1);
        assert_eq!(with_events.shard_partitions().len(), 1);
        assert!(!with_events.is_shard_partitioned(1, 2));
        assert!(with_events.is_shard_partitioned(1, 3));
        assert!(with_events.is_shard_partitioned(1, 7));
        assert!(!with_events.is_shard_partitioned(1, 8));
        assert!(!with_events.is_shard_partitioned(2, 5));

        // Shard events without an explicit topology still need sharding.
        let events_only = Scenario::new(100, 10)
            .unwrap()
            .with_shard_massive_failure(1, 0, 0.25)
            .unwrap();
        assert!(events_only.needs_sharding());

        // Validation.
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_shard_massive_failure(1, 0, 1.5)
            .is_err());
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_shard_partition(0, 5, 4)
            .is_err());
    }

    #[test]
    fn transport_classification() {
        use crate::transport::{LatencyModel, LinkModel, TransportConfig};
        let plain = Scenario::new(100, 10).unwrap();
        assert!(!plain.has_link_models());
        assert!(plain.transport().is_none());

        let link = LinkModel::new(LatencyModel::Exponential { mean: 10.0 }, 0.01).unwrap();
        let asynchronous = Scenario::new(100, 10)
            .unwrap()
            .with_transport(TransportConfig::new(link))
            .unwrap();
        assert!(asynchronous.has_link_models());
        assert_eq!(
            asynchronous.transport().unwrap().default_link().drop_prob(),
            0.01
        );
        // A transport model says nothing about liveness, identity or shards.
        assert!(!asynchronous.has_liveness_events());
        assert!(asynchronous.count_level_compatible());
        assert!(!asynchronous.needs_sharding());
    }

    #[test]
    fn builder_setters() {
        let s = Scenario::new(10, 10)
            .unwrap()
            .with_loss(LossConfig::new(0.1, 0.0).unwrap())
            .with_clock(PeriodClock::new(1.0).unwrap())
            .with_failure_schedule(FailureSchedule::massive_failure_at(3, 0.1))
            .unwrap();
        assert_eq!(s.loss().connection_failure(), 0.1);
        assert_eq!(s.clock().period_secs(), 1.0);
        assert_eq!(s.failure_schedule().len(), 1);
        assert_eq!(s.failure_model().crash_prob(), 0.0);
        let s = s.with_periods(25).unwrap();
        assert_eq!(s.periods(), 25);
        assert!(s.with_periods(0).is_err());
    }

    #[test]
    fn events_beyond_the_horizon_are_rejected() {
        // Massive failure at or past the horizon never fires — typed error.
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(9, 0.5)
            .is_ok());
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(10, 0.5)
            .is_err());
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(99, 0.5)
            .is_err());
        // Same for shard failures and partition starts.
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_shard_massive_failure(10, 0, 0.5)
            .is_err());
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_shard_partition(0, 10, 20)
            .is_err());
        // A partition window extending past the horizon is fine as long as
        // it starts inside it ("partitioned for the whole run" idiom).
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_shard_partition(0, 0, 10)
            .is_ok());
        // Whole schedules are checked too.
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_failure_schedule(FailureSchedule::massive_failure_at(12, 0.1))
            .is_err());
        // Shrinking the horizon below a scheduled event is rejected;
        // growing it is fine.
        let s = Scenario::new(100, 100)
            .unwrap()
            .with_massive_failure(50, 0.5)
            .unwrap();
        assert!(s.clone().with_periods(50).is_err());
        assert!(s.clone().with_periods(51).is_ok());
        assert!(s.with_periods(1000).is_ok());
        let s = Scenario::new(100, 100)
            .unwrap()
            .with_shard_partition(2, 30, 60)
            .unwrap();
        assert!(s.clone().with_periods(30).is_err());
        assert!(s.with_periods(31).is_ok());
    }

    #[test]
    fn link_partitions_beyond_the_horizon_are_rejected() {
        use crate::transport::TransportConfig;
        let partitioned = |from: u64, to: u64| {
            TransportConfig::default()
                .with_segments(2)
                .unwrap()
                .with_partition(0, 1, from, to)
                .unwrap()
        };
        // A window opening inside the horizon is fine, even when it extends
        // past it ("partitioned for the whole run" idiom, as for shards).
        assert!(Scenario::new(100, 10)
            .unwrap()
            .with_transport(partitioned(9, 50))
            .is_ok());
        // A window that opens at or past the horizon never takes effect —
        // typed error naming the offending period.
        let err = Scenario::new(100, 10)
            .unwrap()
            .with_transport(partitioned(10, 20))
            .unwrap_err();
        match err {
            SimError::InvalidConfig { name, reason } => {
                assert_eq!(name, "link_partition");
                assert!(reason.contains("period 10"), "reason: {reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Shrinking the horizon below an attached window start is rejected;
        // keeping it above is fine.
        let s = Scenario::new(100, 100)
            .unwrap()
            .with_transport(partitioned(30, 60))
            .unwrap();
        assert!(s.clone().with_periods(30).is_err());
        assert!(s.with_periods(31).is_ok());
    }

    #[test]
    fn overlapping_shard_partitions_are_rejected() {
        let base = || {
            Scenario::new(100, 100)
                .unwrap()
                .with_shard_partition(1, 10, 20)
                .unwrap()
        };
        // Overlap (shared endpoint, containment, plain intersection) on the
        // same shard is a typed error…
        assert!(base().with_shard_partition(1, 20, 30).is_err());
        assert!(base().with_shard_partition(1, 12, 18).is_err());
        assert!(base().with_shard_partition(1, 5, 10).is_err());
        assert!(base().with_shard_partition(1, 0, 99).is_err());
        // …while disjoint windows and other shards are fine.
        assert!(base().with_shard_partition(1, 21, 30).is_ok());
        assert!(base().with_shard_partition(1, 0, 9).is_ok());
        assert!(base().with_shard_partition(2, 10, 20).is_ok());
    }

    #[test]
    fn adversary_attachment_and_classification() {
        use crate::adversary::ObliviousSchedule;
        let plain = Scenario::new(100, 10).unwrap();
        assert!(plain.adversary().is_none());
        let armed =
            plain.with_adversary(ObliviousSchedule::new().crash_uniform_at(5, 0.5).unwrap());
        let handle = armed.adversary().expect("adversary attached");
        assert_eq!(handle.name(), "oblivious-schedule");
        // Cloning the scenario shares the strategy.
        assert!(armed.clone().adversary().is_some());
        // The adversary rides on its own hook: it does not flip the
        // scheduled-event predicates.
        assert!(!armed.has_liveness_events());
        assert!(armed.count_level_compatible());
        assert!(!armed.needs_sharding());
    }
}
