//! Failure injection: scheduled events and probabilistic crash/recovery models.

use crate::error::{check_probability, SimError};
use crate::group::{Group, ProcessId};
use crate::rng::Rng;
use crate::Result;

/// A failure event scheduled for a specific protocol period.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureEvent {
    /// Crash a uniformly random fraction of the currently alive processes
    /// (the paper's Figures 5, 6 and 12: "massive failure of 50 % of hosts").
    MassiveFailure {
        /// Fraction of the alive processes to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Crash one specific process.
    Crash(ProcessId),
    /// Recover one specific process.
    Recover(ProcessId),
}

/// A time-ordered schedule of failure events.
///
/// # Examples
///
/// ```
/// use netsim::{FailureEvent, FailureSchedule, Group, Rng};
///
/// let mut schedule = FailureSchedule::new();
/// schedule.add(5000, FailureEvent::MassiveFailure { fraction: 0.5 });
///
/// let mut group = Group::new(1000);
/// let mut rng = Rng::seed_from(1);
/// schedule.apply(4999, &mut group, &mut rng)?; // nothing yet
/// assert_eq!(group.alive_count(), 1000);
/// schedule.apply(5000, &mut group, &mut rng)?;
/// assert_eq!(group.alive_count(), 500);
/// # Ok::<(), netsim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureSchedule {
    events: Vec<(u64, FailureEvent)>,
}

impl FailureSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event at the given protocol period.
    pub fn add(&mut self, period: u64, event: FailureEvent) -> &mut Self {
        self.events.push((period, event));
        self
    }

    /// Convenience constructor for the paper's "crash 50 % at time t" setup.
    pub fn massive_failure_at(period: u64, fraction: f64) -> Self {
        let mut s = Self::new();
        s.add(period, FailureEvent::MassiveFailure { fraction });
        s
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events (period, event), in insertion order.
    pub fn events(&self) -> &[(u64, FailureEvent)] {
        &self.events
    }

    /// `true` if any scheduled event names a specific process id — such
    /// events need per-host identity and cannot be applied by count-level
    /// runtimes (massive failures can: they hit a uniformly random subset).
    pub fn has_identity_events(&self) -> bool {
        self.events
            .iter()
            .any(|(_, e)| matches!(e, FailureEvent::Crash(_) | FailureEvent::Recover(_)))
    }

    /// Applies all events scheduled for exactly `period` to the group.
    /// Returns the ids that crashed and the ids that recovered during this
    /// call.
    ///
    /// # Errors
    ///
    /// Propagates invalid fractions or unknown process ids.
    pub fn apply(
        &self,
        period: u64,
        group: &mut Group,
        rng: &mut Rng,
    ) -> Result<(Vec<ProcessId>, Vec<ProcessId>)> {
        let mut crashed = Vec::new();
        let mut recovered = Vec::new();
        for (p, event) in &self.events {
            if *p != period {
                continue;
            }
            match event {
                FailureEvent::MassiveFailure { fraction } => {
                    crashed.extend(group.crash_random_fraction(rng, *fraction)?);
                }
                FailureEvent::Crash(id) => {
                    if group.crash(*id)? {
                        crashed.push(*id);
                    }
                }
                FailureEvent::Recover(id) => {
                    if group.recover(*id)? {
                        recovered.push(*id);
                    }
                }
            }
        }
        Ok((crashed, recovered))
    }
}

/// A probabilistic crash / recovery model applied every protocol period:
/// each alive process crashes with probability `crash_prob`, and each crashed
/// process recovers with probability `recover_prob` (crash-recovery failures
/// in the paper's system model).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureModel {
    crash_prob: f64,
    recover_prob: f64,
}

impl FailureModel {
    /// No background failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a model with the given per-period crash and recovery
    /// probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if either probability lies outside `[0, 1]`.
    pub fn new(crash_prob: f64, recover_prob: f64) -> Result<Self> {
        check_probability("crash_prob", crash_prob)?;
        check_probability("recover_prob", recover_prob)?;
        Ok(FailureModel {
            crash_prob,
            recover_prob,
        })
    }

    /// Per-period crash probability of an alive process.
    pub fn crash_prob(&self) -> f64 {
        self.crash_prob
    }

    /// Per-period recovery probability of a crashed process.
    pub fn recover_prob(&self) -> f64 {
        self.recover_prob
    }

    /// Expected steady-state availability `recover / (crash + recover)`, or
    /// 1.0 when no failures are configured.
    pub fn steady_state_availability(&self) -> f64 {
        if self.crash_prob == 0.0 {
            1.0
        } else {
            self.recover_prob / (self.crash_prob + self.recover_prob)
        }
    }

    /// Applies one period of the model to the group, returning the ids that
    /// crashed and the ids that recovered.
    ///
    /// # Errors
    ///
    /// This cannot fail for ids drawn from the group itself; errors are
    /// propagated defensively.
    pub fn step(
        &self,
        group: &mut Group,
        rng: &mut Rng,
    ) -> Result<(Vec<ProcessId>, Vec<ProcessId>)> {
        if self.crash_prob == 0.0 && self.recover_prob == 0.0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let mut crashed = Vec::new();
        let mut recovered = Vec::new();
        for id in group.all_ids() {
            if group.is_alive(id)? {
                if rng.chance(self.crash_prob) {
                    crashed.push(id);
                }
            } else if rng.chance(self.recover_prob) {
                recovered.push(id);
            }
        }
        for id in &crashed {
            group.crash(*id)?;
        }
        for id in &recovered {
            group.recover(*id)?;
        }
        Ok((crashed, recovered))
    }
}

/// Validates a massive-failure event fraction eagerly (useful when building
/// schedules from user input).
pub fn validate_event(event: &FailureEvent, group_size: usize) -> Result<()> {
    match event {
        FailureEvent::MassiveFailure { fraction } => check_probability("fraction", *fraction),
        FailureEvent::Crash(id) | FailureEvent::Recover(id) => {
            if id.index() < group_size {
                Ok(())
            } else {
                Err(SimError::UnknownProcess {
                    id: id.index(),
                    group_size,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_applies_only_at_the_right_period() {
        let mut s = FailureSchedule::new();
        s.add(10, FailureEvent::Crash(ProcessId(3)))
            .add(10, FailureEvent::Crash(ProcessId(4)))
            .add(20, FailureEvent::Recover(ProcessId(3)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut group = Group::new(10);
        let mut rng = Rng::seed_from(1);
        let (down, up) = s.apply(9, &mut group, &mut rng).unwrap();
        assert!(down.is_empty() && up.is_empty());
        let (down, up) = s.apply(10, &mut group, &mut rng).unwrap();
        assert_eq!(down.len(), 2);
        assert!(up.is_empty());
        assert_eq!(group.alive_count(), 8);
        let (down, up) = s.apply(20, &mut group, &mut rng).unwrap();
        assert!(down.is_empty());
        assert_eq!(up, vec![ProcessId(3)]);
        assert_eq!(group.alive_count(), 9);
        assert!(group.is_alive(ProcessId(3)).unwrap());
    }

    #[test]
    fn massive_failure_constructor() {
        let s = FailureSchedule::massive_failure_at(5000, 0.5);
        let mut group = Group::new(100_000);
        let mut rng = Rng::seed_from(2);
        s.apply(5000, &mut group, &mut rng).unwrap();
        assert_eq!(group.alive_count(), 50_000);
        assert_eq!(s.events().len(), 1);
    }

    #[test]
    fn invalid_fraction_propagates() {
        let s = FailureSchedule::massive_failure_at(1, 2.0);
        let mut group = Group::new(10);
        let mut rng = Rng::seed_from(3);
        assert!(s.apply(1, &mut group, &mut rng).is_err());
        assert!(validate_event(&FailureEvent::MassiveFailure { fraction: 2.0 }, 10).is_err());
        assert!(validate_event(&FailureEvent::Crash(ProcessId(20)), 10).is_err());
        assert!(validate_event(&FailureEvent::Recover(ProcessId(5)), 10).is_ok());
    }

    #[test]
    fn failure_model_statistics() {
        let model = FailureModel::new(0.01, 0.04).unwrap();
        assert_eq!(model.crash_prob(), 0.01);
        assert_eq!(model.recover_prob(), 0.04);
        assert!((model.steady_state_availability() - 0.8).abs() < 1e-12);
        assert_eq!(FailureModel::none().steady_state_availability(), 1.0);
        assert!(FailureModel::new(1.5, 0.0).is_err());

        // Run the model to steady state and measure availability.
        let mut group = Group::new(2_000);
        let mut rng = Rng::seed_from(4);
        for _ in 0..600 {
            model.step(&mut group, &mut rng).unwrap();
        }
        let availability = group.alive_fraction();
        assert!(
            (availability - 0.8).abs() < 0.05,
            "availability {availability}"
        );
    }

    #[test]
    fn none_model_is_a_noop() {
        let mut group = Group::new(50);
        let mut rng = Rng::seed_from(5);
        let (c, r) = FailureModel::none().step(&mut group, &mut rng).unwrap();
        assert!(c.is_empty() && r.is_empty());
        assert_eq!(group.alive_count(), 50);
    }
}
