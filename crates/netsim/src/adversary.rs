//! Adaptive adversaries: fault injection driven by the live run state.
//!
//! Every failure mechanism elsewhere in this crate is *oblivious* — schedules,
//! probabilistic models, churn traces and partition windows are all fixed
//! before the run starts. The paper's thesis is that protocols derived from
//! differential equations inherit the ODE's stability, and an honest stress
//! test of that claim needs an adversary that can *watch* the run and strike
//! where it hurts: kill whichever state currently leads, crash the shard the
//! winning species lives in, let failures cascade, or churn hosts with
//! heavy-tailed bursts.
//!
//! The model:
//!
//! * an [`Adversary`] is an immutable, shareable strategy attached to a
//!   [`Scenario`](crate::Scenario) via
//!   [`Scenario::with_adversary`](crate::Scenario::with_adversary);
//! * at run start every runtime [`fork`](Adversary::fork)s a per-run
//!   [`AdversaryState`] and gives it its own decision PRNG (derived from the
//!   scenario seed on a separate stream, so adversary *decisions* never
//!   perturb the run's main random stream);
//! * once per protocol period — immediately after the scenario's own
//!   scheduled events — the runtime shows the state an [`AdversaryView`]
//!   (per-state alive counts, per-shard counts when sharded, transport
//!   gauges when asynchronous) and applies the [`Injection`]s it returns;
//! * count-level runtimes apply injections exchangeably (hypergeometric
//!   victim draws), per-id runtimes pick uniform victims — the same
//!   semantics as the scenario's own massive-failure events, which is what
//!   lets property tests pin an oblivious adversary bit-for-bit to the
//!   scheduled-event path.
//!
//! Shipped strategies:
//!
//! * [`ObliviousSchedule`] — a fixed injection list that ignores the view;
//!   the bridge between the adversary path and classic scenario events.
//! * [`TargetLargestState`] — repeatedly kills a budgeted fraction of the
//!   population, always drawn from whichever state currently leads.
//! * [`TargetWinner`] — waits until one state crosses a winning share, then
//!   strikes that species where it is concentrated (its densest shard on a
//!   sharded run, the state itself otherwise).
//! * [`CascadingFailure`] — a correlated model: each period's observed
//!   crashes raise the next period's crash hazard, which decays
//!   exponentially when the system is quiet.
//! * [`HeavyTailedChurn`] — Pareto-interarrival churn bursts generated from
//!   a dedicated seed into a replayable trace (record once, replay
//!   bit-for-bit under any run seed).

use crate::error::{check_probability, SimError};
use crate::rng::Rng;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// Transport gauges exposed to adversaries on asynchronous runs (cumulative
/// counters plus the instantaneous queue depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportGauges {
    /// Messages currently queued for delivery.
    pub queue_depth: u64,
    /// Messages sent since the run started.
    pub sent: u64,
    /// Messages delivered since the run started.
    pub delivered: u64,
    /// Messages dropped (loss or partitions) since the run started.
    pub dropped: u64,
}

/// The live run state an adversary observes once per period, immediately
/// after the scenario's own scheduled events have been applied.
#[derive(Debug)]
pub struct AdversaryView<'a> {
    /// The period about to execute.
    pub period: u64,
    /// Alive processes per protocol state (summed over shards when sharded).
    pub counts_alive: &'a [u64],
    /// Total alive processes.
    pub alive: u64,
    /// Per-shard alive counts (`[shard][state]`), present on sharded runs.
    pub shard_counts_alive: Option<&'a [Vec<u64>]>,
    /// Transport gauges, present on asynchronous runs.
    pub transport: Option<TransportGauges>,
    /// Alive processes per transport segment, present on asynchronous runs
    /// (the population blocks that map to worker processes on the socket
    /// backend — the targets of [`Injection::KillWorker`]).
    pub segments_alive: Option<&'a [u64]>,
}

impl AdversaryView<'_> {
    /// The index of the state with the most alive processes (ties break
    /// toward the lower index), or `None` if nobody is alive.
    pub fn leading_state(&self) -> Option<usize> {
        if self.alive == 0 {
            return None;
        }
        self.counts_alive
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// The transport segment holding the most alive processes (ties break
    /// toward the lower index), or `None` without segment visibility / when
    /// every segment is empty.
    pub fn densest_segment(&self) -> Option<usize> {
        let segments = self.segments_alive?;
        segments
            .iter()
            .enumerate()
            .filter(|(_, alive)| **alive > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// The shard holding the most alive processes of `state`, or `None` on
    /// unsharded runs / when the state is extinct everywhere.
    pub fn densest_shard_of(&self, state: usize) -> Option<usize> {
        let shards = self.shard_counts_alive?;
        shards
            .iter()
            .enumerate()
            .filter(|(_, counts)| counts.get(state).copied().unwrap_or(0) > 0)
            .max_by(|a, b| a.1[state].cmp(&b.1[state]).then(b.0.cmp(&a.0)))
            .map(|(j, _)| j)
    }
}

/// One fault injected mid-run by an adversary. Fractions follow the same
/// floor semantics as scheduled massive failures: a `fraction` of the target
/// population means exactly `floor(fraction · population)` victims, chosen
/// uniformly (exchangeably on count-level runtimes, per-id otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Injection {
    /// Crash a uniform fraction of all currently alive processes — the
    /// injected twin of [`FailureEvent::MassiveFailure`](crate::FailureEvent).
    CrashUniform {
        /// Fraction of the alive population to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Crash a fraction of the alive processes currently in one state.
    CrashState {
        /// The targeted protocol state.
        state: usize,
        /// Fraction of that state's alive processes to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Crash a fraction of one shard's alive processes (sharded runs only).
    CrashShard {
        /// The targeted shard.
        shard: usize,
        /// Fraction of that shard's alive processes to crash, in `[0, 1]`.
        fraction: f64,
    },
    /// Recover a uniform fraction of the currently crashed processes.
    RecoverUniform {
        /// Fraction of the crashed population to recover, in `[0, 1]`.
        fraction: f64,
    },
    /// Kill the worker owning one transport segment (asynchronous runs
    /// only). Every alive process in the segment crashes at once; on the
    /// socket backend the worker *process* is SIGKILLed too — real death,
    /// not simulated. With supervision enabled
    /// ([`TransportConfig::with_supervision`](crate::TransportConfig::with_supervision))
    /// the segment is later restored from the last period-boundary
    /// checkpoint; without it, the segment stays parked and the run degrades
    /// gracefully.
    KillWorker {
        /// The targeted transport segment (== worker index).
        segment: usize,
    },
}

impl Injection {
    /// Validates the injection's fraction.
    ///
    /// # Errors
    ///
    /// Returns an error if the fraction lies outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match self {
            Injection::CrashUniform { fraction }
            | Injection::CrashState { fraction, .. }
            | Injection::CrashShard { fraction, .. }
            | Injection::RecoverUniform { fraction } => check_probability("fraction", *fraction),
            Injection::KillWorker { .. } => Ok(()),
        }
    }
}

/// The record of one applied injection, reported through the observer layer
/// (`PeriodEvents::injections` in `dpde-core`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// The period the injection was applied at.
    pub period: u64,
    /// The injection as emitted by the strategy.
    pub injection: Injection,
    /// Processes actually crashed (or recovered) by it.
    pub victims: u64,
}

/// An adaptive fault-injection strategy. Implementations are immutable and
/// shareable; per-run mutable state lives in the [`AdversaryState`] returned
/// by [`fork`](Self::fork).
pub trait Adversary: fmt::Debug + Send + Sync {
    /// A short human-readable strategy name (used in experiment output).
    fn name(&self) -> &str;

    /// Creates the per-run mutable strategy state.
    fn fork(&self) -> Box<dyn AdversaryState>;
}

/// The per-run mutable half of an [`Adversary`]. `plan` is called once per
/// protocol period with the live view; the returned injections are applied
/// immediately, in order. `rng` is the adversary's private decision stream —
/// derived from the scenario seed but separate from the run's main stream,
/// so a strategy that ignores the view consumes nothing from the run.
pub trait AdversaryState: fmt::Debug + Send {
    /// Observes the current period and emits the injections to apply.
    fn plan(&mut self, view: &AdversaryView<'_>, rng: &mut Rng) -> Vec<Injection>;

    /// Clones the strategy state into a fresh box (runtime execution states
    /// are `Clone`, and the strategy state rides inside them).
    fn clone_box(&self) -> Box<dyn AdversaryState>;
}

impl Clone for Box<dyn AdversaryState> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A cloneable, `Debug`-friendly handle wrapping a shared [`Adversary`] so
/// it can ride on a [`Scenario`](crate::Scenario) (which is `Clone`).
#[derive(Clone)]
pub struct AdversaryHandle(Arc<dyn Adversary>);

impl AdversaryHandle {
    /// Wraps a strategy.
    pub fn new(adversary: impl Adversary + 'static) -> Self {
        AdversaryHandle(Arc::new(adversary))
    }

    /// The strategy's name.
    pub fn name(&self) -> &str {
        self.0.name()
    }

    /// Forks the per-run strategy state.
    pub fn fork(&self) -> Box<dyn AdversaryState> {
        self.0.fork()
    }
}

impl fmt::Debug for AdversaryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AdversaryHandle").field(&self.0).finish()
    }
}

// ---------------------------------------------------------------------------
// ObliviousSchedule
// ---------------------------------------------------------------------------

/// A fixed injection schedule that ignores the live view — the oblivious
/// baseline every adaptive strategy is compared against, and the bridge used
/// by property tests to pin the injection path bit-for-bit to the classic
/// scenario-event path (a `CrashUniform` here consumes the run's random
/// stream exactly like a scheduled massive failure).
#[derive(Debug, Clone, Default)]
pub struct ObliviousSchedule {
    events: Vec<(u64, Injection)>,
}

impl ObliviousSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an injection at the given period.
    ///
    /// # Errors
    ///
    /// Returns an error if the injection's fraction lies outside `[0, 1]`.
    pub fn inject_at(mut self, period: u64, injection: Injection) -> Result<Self> {
        injection.validate()?;
        self.events.push((period, injection));
        Ok(self)
    }

    /// Convenience: a uniform crash of `fraction` of the alive population at
    /// `period` — the injected twin of
    /// [`Scenario::with_massive_failure`](crate::Scenario::with_massive_failure).
    ///
    /// # Errors
    ///
    /// Returns an error if the fraction lies outside `[0, 1]`.
    pub fn crash_uniform_at(self, period: u64, fraction: f64) -> Result<Self> {
        self.inject_at(period, Injection::CrashUniform { fraction })
    }

    /// Convenience: kill the worker owning `segment` at `period` — real
    /// process death on the socket backend, a whole-segment crash on the
    /// in-process one.
    ///
    /// # Errors
    ///
    /// Never fails today; kept fallible for uniformity with the other
    /// builders.
    pub fn kill_worker_at(self, period: u64, segment: usize) -> Result<Self> {
        self.inject_at(period, Injection::KillWorker { segment })
    }

    /// The scheduled `(period, injection)` pairs, in insertion order.
    pub fn events(&self) -> &[(u64, Injection)] {
        &self.events
    }
}

impl Adversary for ObliviousSchedule {
    fn name(&self) -> &str {
        "oblivious-schedule"
    }

    fn fork(&self) -> Box<dyn AdversaryState> {
        Box::new(ObliviousScheduleState {
            events: self.events.clone(),
        })
    }
}

#[derive(Debug, Clone)]
struct ObliviousScheduleState {
    events: Vec<(u64, Injection)>,
}

impl AdversaryState for ObliviousScheduleState {
    fn clone_box(&self) -> Box<dyn AdversaryState> {
        Box::new(self.clone())
    }

    fn plan(&mut self, view: &AdversaryView<'_>, _rng: &mut Rng) -> Vec<Injection> {
        self.events
            .iter()
            .filter(|(p, _)| *p == view.period)
            .map(|(_, inj)| *inj)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// TargetLargestState
// ---------------------------------------------------------------------------

/// Kills a budgeted fraction of the population, always drawn from whichever
/// state currently leads.
///
/// Each strike spends `budget_fraction` of the *total* alive population, all
/// taken from the leading state (capped at that state's size). That makes
/// the strategy budget-comparable with an oblivious uniform crash of the
/// same fraction: both kill `floor(budget_fraction · alive)` processes per
/// strike — the adaptive one just concentrates every casualty on the
/// current winner.
#[derive(Debug, Clone, Copy)]
pub struct TargetLargestState {
    budget_fraction: f64,
    start_period: u64,
    every: u64,
    strikes: u32,
    kill_workers: bool,
}

impl TargetLargestState {
    /// A strategy striking every `every` periods from `start_period`, at
    /// most `strikes` times, spending `budget_fraction` of the alive
    /// population per strike.
    ///
    /// # Errors
    ///
    /// Returns an error if the fraction lies outside `[0, 1]` or `every` is
    /// zero.
    pub fn new(budget_fraction: f64, start_period: u64, every: u64, strikes: u32) -> Result<Self> {
        check_probability("budget_fraction", budget_fraction)?;
        if every == 0 {
            return Err(SimError::InvalidConfig {
                name: "every",
                reason: "strike interval must be at least one period".into(),
            });
        }
        Ok(TargetLargestState {
            budget_fraction,
            start_period,
            every,
            strikes,
            kill_workers: false,
        })
    }

    /// Strike by killing whole workers instead of budgeted state fractions:
    /// each strike emits [`Injection::KillWorker`] against the densest
    /// transport segment — on the socket backend, a real SIGKILL. On runs
    /// without segment visibility the strategy falls back to its budgeted
    /// `CrashState` strike, so it stays usable on every tier.
    pub fn striking_workers(mut self) -> Self {
        self.kill_workers = true;
        self
    }
}

impl Adversary for TargetLargestState {
    fn name(&self) -> &str {
        "target-largest-state"
    }

    fn fork(&self) -> Box<dyn AdversaryState> {
        Box::new(TargetLargestStateRun {
            config: *self,
            remaining: self.strikes,
        })
    }
}

#[derive(Debug, Clone)]
struct TargetLargestStateRun {
    config: TargetLargestState,
    remaining: u32,
}

impl AdversaryState for TargetLargestStateRun {
    fn clone_box(&self) -> Box<dyn AdversaryState> {
        Box::new(self.clone())
    }

    fn plan(&mut self, view: &AdversaryView<'_>, _rng: &mut Rng) -> Vec<Injection> {
        let c = &self.config;
        if self.remaining == 0
            || view.period < c.start_period
            || (view.period - c.start_period) % c.every != 0
        {
            return Vec::new();
        }
        if self.config.kill_workers {
            if let Some(segment) = view.densest_segment() {
                self.remaining -= 1;
                return vec![Injection::KillWorker { segment }];
            }
        }
        let Some(state) = view.leading_state() else {
            return Vec::new();
        };
        let in_state = view.counts_alive[state];
        if in_state == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        // Spend the budget (a fraction of *total* alive) inside the leading
        // state: floor parity with CrashUniform{budget_fraction} holds as
        // long as the leader is big enough to absorb the strike.
        let fraction = (c.budget_fraction * view.alive as f64 / in_state as f64).min(1.0);
        vec![Injection::CrashState { state, fraction }]
    }
}

// ---------------------------------------------------------------------------
// TargetWinner
// ---------------------------------------------------------------------------

/// Waits until one state crosses a winning share of the alive population,
/// then strikes that species where it is concentrated: on a sharded run the
/// shard holding most of it is crashed, otherwise the state itself is hit.
/// After each strike the strategy cools down before re-evaluating.
#[derive(Debug, Clone, Copy)]
pub struct TargetWinner {
    threshold_share: f64,
    fraction: f64,
    strikes: u32,
    cooldown: u64,
}

impl TargetWinner {
    /// A strategy that fires once a state holds at least `threshold_share`
    /// of the alive population, crashing `fraction` of the winner's
    /// stronghold (shard or state), at most `strikes` times with `cooldown`
    /// periods between strikes.
    ///
    /// # Errors
    ///
    /// Returns an error if either probability lies outside `[0, 1]`.
    pub fn new(threshold_share: f64, fraction: f64, strikes: u32, cooldown: u64) -> Result<Self> {
        check_probability("threshold_share", threshold_share)?;
        check_probability("fraction", fraction)?;
        Ok(TargetWinner {
            threshold_share,
            fraction,
            strikes,
            cooldown,
        })
    }
}

impl Adversary for TargetWinner {
    fn name(&self) -> &str {
        "target-winner"
    }

    fn fork(&self) -> Box<dyn AdversaryState> {
        Box::new(TargetWinnerRun {
            config: *self,
            remaining: self.strikes,
            next_allowed: 0,
        })
    }
}

#[derive(Debug, Clone)]
struct TargetWinnerRun {
    config: TargetWinner,
    remaining: u32,
    next_allowed: u64,
}

impl AdversaryState for TargetWinnerRun {
    fn clone_box(&self) -> Box<dyn AdversaryState> {
        Box::new(self.clone())
    }

    fn plan(&mut self, view: &AdversaryView<'_>, _rng: &mut Rng) -> Vec<Injection> {
        if self.remaining == 0 || view.period < self.next_allowed || view.alive == 0 {
            return Vec::new();
        }
        let Some(state) = view.leading_state() else {
            return Vec::new();
        };
        let share = view.counts_alive[state] as f64 / view.alive as f64;
        if share < self.config.threshold_share {
            return Vec::new();
        }
        self.remaining -= 1;
        self.next_allowed = view.period + self.config.cooldown.max(1);
        let fraction = self.config.fraction;
        match view.densest_shard_of(state) {
            Some(shard) => vec![Injection::CrashShard { shard, fraction }],
            None => vec![Injection::CrashState { state, fraction }],
        }
    }
}

// ---------------------------------------------------------------------------
// CascadingFailure
// ---------------------------------------------------------------------------

/// A correlated failure model: every observed crash raises the next
/// period's crash hazard, and the hazard decays exponentially while the
/// system is quiet. A single spark can therefore snowball — each wave of
/// victims feeds the hazard that kills the next wave — until the decay wins.
///
/// The hazard update per period is
/// `h ← decay · h + gain · (observed crashed fraction)`, seeded by
/// `h = spark_fraction` at `spark_period`; while `h` exceeds a small cutoff
/// the strategy emits `CrashUniform { fraction: h }`.
#[derive(Debug, Clone, Copy)]
pub struct CascadingFailure {
    spark_period: u64,
    spark_fraction: f64,
    gain: f64,
    decay: f64,
}

/// Hazards below this are treated as extinguished (no injection emitted).
const HAZARD_CUTOFF: f64 = 1e-4;

impl CascadingFailure {
    /// A cascade sparked at `spark_period` with initial hazard
    /// `spark_fraction`; each period's crashed fraction is fed back with
    /// `gain`, and the hazard decays by `decay` per period.
    ///
    /// # Errors
    ///
    /// Returns an error if `spark_fraction` or `decay` lies outside
    /// `[0, 1]`, or `gain` is negative or not finite.
    pub fn new(spark_period: u64, spark_fraction: f64, gain: f64, decay: f64) -> Result<Self> {
        check_probability("spark_fraction", spark_fraction)?;
        check_probability("decay", decay)?;
        if !gain.is_finite() || gain < 0.0 {
            return Err(SimError::InvalidConfig {
                name: "gain",
                reason: format!("hazard gain must be finite and non-negative, got {gain}"),
            });
        }
        Ok(CascadingFailure {
            spark_period,
            spark_fraction,
            gain,
            decay,
        })
    }
}

impl Adversary for CascadingFailure {
    fn name(&self) -> &str {
        "cascading-failure"
    }

    fn fork(&self) -> Box<dyn AdversaryState> {
        Box::new(CascadingFailureRun {
            config: *self,
            hazard: 0.0,
            last_alive: None,
        })
    }
}

#[derive(Debug, Clone)]
struct CascadingFailureRun {
    config: CascadingFailure,
    hazard: f64,
    last_alive: Option<u64>,
}

impl AdversaryState for CascadingFailureRun {
    fn clone_box(&self) -> Box<dyn AdversaryState> {
        Box::new(self.clone())
    }

    fn plan(&mut self, view: &AdversaryView<'_>, _rng: &mut Rng) -> Vec<Injection> {
        // Feed back the crashes observed since the previous period (from any
        // source: our own injections, scheduled events, the failure model).
        if let Some(last) = self.last_alive {
            let crashed = last.saturating_sub(view.alive);
            let crashed_fraction = if last > 0 {
                crashed as f64 / last as f64
            } else {
                0.0
            };
            self.hazard =
                (self.config.decay * self.hazard + self.config.gain * crashed_fraction).min(1.0);
        }
        if view.period == self.config.spark_period {
            self.hazard = self.hazard.max(self.config.spark_fraction);
        }
        self.last_alive = Some(view.alive);
        if self.hazard < HAZARD_CUTOFF || view.alive == 0 {
            return Vec::new();
        }
        vec![Injection::CrashUniform {
            fraction: self.hazard,
        }]
    }
}

// ---------------------------------------------------------------------------
// HeavyTailedChurn
// ---------------------------------------------------------------------------

/// One churn burst of a [`HeavyTailedChurn`] trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnBurst {
    /// The period the burst fires at.
    pub period: u64,
    /// Fraction of the alive population that leaves (crashes).
    pub leave_fraction: f64,
    /// Fraction of the crashed population that rejoins (recovers).
    pub rejoin_fraction: f64,
}

/// Heavy-tailed churn: bursts of departures and rejoins whose interarrival
/// times follow a Pareto distribution, so quiet stretches are punctuated by
/// clustered disruption (the opposite of the memoryless churn a
/// per-period [`FailureModel`](crate::FailureModel) produces).
///
/// The burst trace is generated **once** from a dedicated seed
/// ([`generate`](Self::generate)) and stored — record/replay is built in:
/// [`bursts`](Self::bursts) exposes the trace and [`replay`](Self::replay)
/// reconstructs the strategy from it, so the same trace can be replayed
/// bit-for-bit under any run seed.
#[derive(Debug, Clone)]
pub struct HeavyTailedChurn {
    bursts: Vec<ChurnBurst>,
}

impl HeavyTailedChurn {
    /// Generates a burst trace over `horizon` periods: interarrival gaps are
    /// Pareto with tail index `shape` (> 1, lower = heavier tail) and mean
    /// `mean_gap` periods; every burst crashes `leave_fraction` of the alive
    /// population and recovers `rejoin_fraction` of the crashed one.
    ///
    /// # Errors
    ///
    /// Returns an error if `shape ≤ 1`, `mean_gap` is not positive, or
    /// either fraction lies outside `[0, 1]`.
    pub fn generate(
        seed: u64,
        horizon: u64,
        shape: f64,
        mean_gap: f64,
        leave_fraction: f64,
        rejoin_fraction: f64,
    ) -> Result<Self> {
        if !shape.is_finite() || shape <= 1.0 {
            return Err(SimError::InvalidConfig {
                name: "shape",
                reason: format!("Pareto tail index must exceed 1 (finite mean), got {shape}"),
            });
        }
        if !mean_gap.is_finite() || mean_gap <= 0.0 {
            return Err(SimError::InvalidConfig {
                name: "mean_gap",
                reason: format!("mean interarrival gap must be positive, got {mean_gap}"),
            });
        }
        check_probability("leave_fraction", leave_fraction)?;
        check_probability("rejoin_fraction", rejoin_fraction)?;
        // Pareto(scale, shape) has mean scale·shape/(shape−1); solve for the
        // scale that hits the requested mean gap.
        let scale = mean_gap * (shape - 1.0) / shape;
        let mut rng = Rng::seed_from(seed);
        let mut bursts = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u = rng.next_f64();
            let gap = scale / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / shape);
            t += gap;
            if t >= horizon as f64 {
                break;
            }
            bursts.push(ChurnBurst {
                period: t as u64,
                leave_fraction,
                rejoin_fraction,
            });
        }
        Ok(HeavyTailedChurn { bursts })
    }

    /// Reconstructs the strategy from a recorded trace.
    pub fn replay(bursts: Vec<ChurnBurst>) -> Self {
        HeavyTailedChurn { bursts }
    }

    /// The recorded burst trace, in period order.
    pub fn bursts(&self) -> &[ChurnBurst] {
        &self.bursts
    }
}

impl Adversary for HeavyTailedChurn {
    fn name(&self) -> &str {
        "heavy-tailed-churn"
    }

    fn fork(&self) -> Box<dyn AdversaryState> {
        Box::new(HeavyTailedChurnRun {
            bursts: self.bursts.clone(),
        })
    }
}

#[derive(Debug, Clone)]
struct HeavyTailedChurnRun {
    bursts: Vec<ChurnBurst>,
}

impl AdversaryState for HeavyTailedChurnRun {
    fn clone_box(&self) -> Box<dyn AdversaryState> {
        Box::new(self.clone())
    }

    fn plan(&mut self, view: &AdversaryView<'_>, _rng: &mut Rng) -> Vec<Injection> {
        let mut out = Vec::new();
        for burst in self.bursts.iter().filter(|b| b.period == view.period) {
            if burst.leave_fraction > 0.0 {
                out.push(Injection::CrashUniform {
                    fraction: burst.leave_fraction,
                });
            }
            if burst.rejoin_fraction > 0.0 {
                out.push(Injection::RecoverUniform {
                    fraction: burst.rejoin_fraction,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        period: u64,
        counts: &'a [u64],
        shards: Option<&'a [Vec<u64>]>,
    ) -> AdversaryView<'a> {
        AdversaryView {
            period,
            counts_alive: counts,
            alive: counts.iter().sum(),
            shard_counts_alive: shards,
            transport: None,
            segments_alive: None,
        }
    }

    #[test]
    fn view_helpers() {
        let counts = [10u64, 30, 20];
        let v = view(0, &counts, None);
        assert_eq!(v.leading_state(), Some(1));
        assert_eq!(v.densest_shard_of(1), None);
        let empty = [0u64, 0];
        assert_eq!(view(0, &empty, None).leading_state(), None);
        // Ties break toward the lower index.
        let tied = [5u64, 5];
        assert_eq!(view(0, &tied, None).leading_state(), Some(0));
        let shards = vec![vec![5u64, 1], vec![5, 29], vec![0, 0]];
        let v = view(0, &counts, Some(&shards));
        assert_eq!(v.densest_shard_of(1), Some(1));
        assert_eq!(v.densest_shard_of(0), Some(0), "tie breaks low");
    }

    #[test]
    fn segment_helpers_and_kill_worker() {
        let counts = [10u64, 30];
        let v = view(0, &counts, None);
        assert_eq!(v.densest_segment(), None, "no segment visibility");
        let segments = [3u64, 25, 25, 0];
        let v = AdversaryView {
            segments_alive: Some(&segments),
            ..view(0, &counts, None)
        };
        assert_eq!(v.densest_segment(), Some(1), "tie breaks low");
        let empty = [0u64, 0];
        let v = AdversaryView {
            segments_alive: Some(&empty),
            ..view(0, &counts, None)
        };
        assert_eq!(v.densest_segment(), None, "all segments empty");

        assert!(Injection::KillWorker { segment: 2 }.validate().is_ok());
        let schedule = ObliviousSchedule::new().kill_worker_at(4, 1).unwrap();
        let mut run = schedule.fork();
        let mut rng = Rng::seed_from(0);
        assert!(run.plan(&view(3, &counts, None), &mut rng).is_empty());
        assert_eq!(
            run.plan(&view(4, &counts, None), &mut rng),
            vec![Injection::KillWorker { segment: 1 }]
        );

        // The worker-striking variant of TargetLargestState hits the
        // densest segment when it can see segments, and falls back to its
        // budgeted CrashState strike when it cannot.
        let adv = TargetLargestState::new(0.2, 0, 5, 2)
            .unwrap()
            .striking_workers();
        let mut run = adv.fork();
        let segments = [10u64, 30];
        let v = AdversaryView {
            segments_alive: Some(&segments),
            ..view(0, &counts, None)
        };
        assert_eq!(
            run.plan(&v, &mut rng),
            vec![Injection::KillWorker { segment: 1 }]
        );
        let got = run.plan(&view(5, &counts, None), &mut rng);
        assert!(
            matches!(got[..], [Injection::CrashState { state: 1, .. }]),
            "fallback without segment visibility, got {got:?}"
        );
        assert!(
            run.plan(&v, &mut rng).is_empty(),
            "strike budget is shared across both modes"
        );
    }

    #[test]
    fn injection_validation() {
        assert!(Injection::CrashUniform { fraction: 0.5 }.validate().is_ok());
        assert!(Injection::CrashUniform { fraction: 1.5 }
            .validate()
            .is_err());
        assert!(Injection::CrashState {
            state: 0,
            fraction: -0.1
        }
        .validate()
        .is_err());
        assert!(Injection::RecoverUniform { fraction: 1.0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn oblivious_schedule_fires_at_its_periods_only() {
        let schedule = ObliviousSchedule::new()
            .crash_uniform_at(3, 0.5)
            .unwrap()
            .inject_at(7, Injection::RecoverUniform { fraction: 1.0 })
            .unwrap();
        assert_eq!(schedule.events().len(), 2);
        assert!(ObliviousSchedule::new().crash_uniform_at(1, 2.0).is_err());
        let handle = AdversaryHandle::new(schedule);
        assert_eq!(handle.name(), "oblivious-schedule");
        assert!(format!("{handle:?}").contains("AdversaryHandle"));
        let mut run = handle.fork();
        let counts = [50u64, 50];
        let mut rng = Rng::seed_from(0);
        assert!(run.plan(&view(2, &counts, None), &mut rng).is_empty());
        assert_eq!(
            run.plan(&view(3, &counts, None), &mut rng),
            vec![Injection::CrashUniform { fraction: 0.5 }]
        );
        assert_eq!(
            run.plan(&view(7, &counts, None), &mut rng),
            vec![Injection::RecoverUniform { fraction: 1.0 }]
        );
    }

    #[test]
    fn target_largest_state_spends_total_budget_on_the_leader() {
        let adv = TargetLargestState::new(0.2, 10, 5, 2).unwrap();
        assert!(TargetLargestState::new(1.5, 0, 1, 1).is_err());
        assert!(TargetLargestState::new(0.5, 0, 0, 1).is_err());
        let mut run = adv.fork();
        let counts = [550u64, 450];
        let mut rng = Rng::seed_from(0);
        assert!(run.plan(&view(9, &counts, None), &mut rng).is_empty());
        let got = run.plan(&view(10, &counts, None), &mut rng);
        // 20 % of 1000 alive = 200 victims, all from state 0 (550 strong):
        // fraction 200/550.
        match got[..] {
            [Injection::CrashState { state: 0, fraction }] => {
                assert!((fraction - 200.0 / 550.0).abs() < 1e-12);
            }
            _ => panic!("unexpected plan {got:?}"),
        }
        // Off-cadence periods are quiet; the second strike follows the
        // current leader, and the budget is capped at the leader's size.
        assert!(run.plan(&view(11, &counts, None), &mut rng).is_empty());
        let flipped = [100u64, 900];
        let got = run.plan(&view(15, &flipped, None), &mut rng);
        match got[..] {
            [Injection::CrashState { state: 1, fraction }] => {
                assert!((fraction - 200.0 / 900.0).abs() < 1e-12);
            }
            _ => panic!("unexpected plan {got:?}"),
        }
        // Strike budget exhausted.
        assert!(run.plan(&view(20, &counts, None), &mut rng).is_empty());
    }

    #[test]
    fn target_winner_waits_for_the_threshold_and_prefers_shards() {
        let adv = TargetWinner::new(0.6, 0.5, 1, 3).unwrap();
        assert!(TargetWinner::new(1.2, 0.5, 1, 1).is_err());
        let mut run = adv.fork();
        let mut rng = Rng::seed_from(0);
        let tied = [500u64, 500];
        assert!(run.plan(&view(0, &tied, None), &mut rng).is_empty());
        let decided = [700u64, 300];
        let shards = vec![vec![100u64, 200], vec![600, 100]];
        let got = run.plan(&view(5, &decided, Some(&shards)), &mut rng);
        assert_eq!(
            got,
            vec![Injection::CrashShard {
                shard: 1,
                fraction: 0.5
            }]
        );
        // Budget spent.
        assert!(run
            .plan(&view(20, &decided, Some(&shards)), &mut rng)
            .is_empty());

        // Without shard visibility the state itself is struck.
        let mut run = TargetWinner::new(0.6, 0.25, 2, 4).unwrap().fork();
        let got = run.plan(&view(5, &decided, None), &mut rng);
        assert_eq!(
            got,
            vec![Injection::CrashState {
                state: 0,
                fraction: 0.25
            }]
        );
        // Cooldown: quiet until period 9.
        assert!(run.plan(&view(8, &decided, None), &mut rng).is_empty());
        assert!(!run.plan(&view(9, &decided, None), &mut rng).is_empty());
    }

    #[test]
    fn cascading_failure_snowballs_and_decays() {
        let adv = CascadingFailure::new(5, 0.1, 2.0, 0.5).unwrap();
        assert!(CascadingFailure::new(0, 1.5, 1.0, 0.5).is_err());
        assert!(CascadingFailure::new(0, 0.5, -1.0, 0.5).is_err());
        assert!(CascadingFailure::new(0, 0.5, 1.0, 1.5).is_err());
        let mut run = adv.fork();
        let mut rng = Rng::seed_from(0);
        let counts = [1000u64];
        assert!(run.plan(&view(0, &counts, None), &mut rng).is_empty());
        // Spark fires.
        let got = run.plan(&view(5, &counts, None), &mut rng);
        assert_eq!(got, vec![Injection::CrashUniform { fraction: 0.1 }]);
        // 10 % died: hazard = 0.5·0.1 + 2·0.1 = 0.25 — the cascade grows.
        let after = [900u64];
        let got = run.plan(&view(6, &after, None), &mut rng);
        match got[..] {
            [Injection::CrashUniform { fraction }] => {
                assert!((fraction - 0.25).abs() < 1e-12)
            }
            _ => panic!("unexpected plan {got:?}"),
        }
        // If nothing dies, the hazard halves each period and eventually
        // extinguishes.
        let mut fractions = Vec::new();
        for p in 7..30 {
            let got = run.plan(&view(p, &after, None), &mut rng);
            match got[..] {
                [Injection::CrashUniform { fraction }] => fractions.push(fraction),
                [] => break,
                _ => panic!("unexpected plan {got:?}"),
            }
        }
        assert!(fractions.windows(2).all(|w| w[1] < w[0]));
        assert!(run.plan(&view(40, &after, None), &mut rng).is_empty());
    }

    #[test]
    fn heavy_tailed_churn_records_and_replays() {
        let adv = HeavyTailedChurn::generate(42, 500, 1.5, 25.0, 0.3, 0.5).unwrap();
        assert!(HeavyTailedChurn::generate(1, 100, 0.9, 10.0, 0.1, 0.1).is_err());
        assert!(HeavyTailedChurn::generate(1, 100, 2.0, 0.0, 0.1, 0.1).is_err());
        assert!(HeavyTailedChurn::generate(1, 100, 2.0, 10.0, 1.5, 0.1).is_err());
        let bursts = adv.bursts().to_vec();
        assert!(!bursts.is_empty(), "500 periods at mean gap 25 must burst");
        assert!(bursts.iter().all(|b| b.period < 500));
        assert!(bursts.windows(2).all(|w| w[0].period <= w[1].period));
        // Same seed → identical trace; the replayed strategy plans the same.
        let again = HeavyTailedChurn::generate(42, 500, 1.5, 25.0, 0.3, 0.5).unwrap();
        assert_eq!(adv.bursts(), again.bursts());
        let replayed = HeavyTailedChurn::replay(bursts.clone());
        let mut a = adv.fork();
        let mut b = replayed.fork();
        let counts = [100u64];
        let mut rng = Rng::seed_from(0);
        for p in 0..500 {
            assert_eq!(
                a.plan(&view(p, &counts, None), &mut rng),
                b.plan(&view(p, &counts, None), &mut rng)
            );
        }
        // A burst emits a crash and a recovery injection.
        let burst = bursts[0];
        let got = a.plan(&view(burst.period, &counts, None), &mut rng);
        assert_eq!(
            got,
            vec![
                Injection::CrashUniform {
                    fraction: burst.leave_fraction
                },
                Injection::RecoverUniform {
                    fraction: burst.rejoin_fraction
                }
            ]
        );
        // Different seeds diverge.
        let other = HeavyTailedChurn::generate(43, 500, 1.5, 25.0, 0.3, 0.5).unwrap();
        assert_ne!(adv.bursts(), other.bursts());
    }
}
