//! Population topology: one well-mixed group, or sharded local mixing.
//!
//! The paper (and the mean-field limits it builds on) assumes one uniformly
//! mixed population. A [`Topology`] makes that assumption explicit and
//! optional: a [`Scenario`](crate::Scenario) carries either
//! [`Topology::WellMixed`] (the default — every runtime behaves exactly as
//! before) or [`Topology::Sharded`], which splits the population into `S`
//! shards (geographic cells / subnets) that mix internally, exchanging
//! processes at period boundaries via migration.
//!
//! Sharding is how the simulator probes where the ODE correspondence bends
//! when mixing is only local, and the named step toward N = 10⁸–10⁹ runs:
//! per-shard state advances independently between exchanges.

use crate::error::{check_probability, SimError};
use crate::Result;

/// How the population's interaction graph is organized.
///
/// # Examples
///
/// ```
/// use netsim::{Scenario, Topology};
///
/// let scenario = Scenario::new(1_000_000, 30)?
///     .with_topology(Topology::sharded(8, 0.01)?);
/// assert_eq!(scenario.topology().shard_count(), 8);
/// # Ok::<(), netsim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// One uniformly mixed group — the paper's assumption and the default.
    #[default]
    WellMixed,
    /// The population is split into shards that mix internally; processes
    /// move between shards through a per-period migration exchange.
    Sharded(ShardConfig),
}

impl Topology {
    /// Convenience constructor for a sharded topology with the default
    /// ([`Placement::Blocks`]) initial placement.
    ///
    /// # Errors
    ///
    /// Returns an error if `shards` is zero or `migration` lies outside
    /// `[0, 1]`.
    pub fn sharded(shards: usize, migration: f64) -> Result<Self> {
        Ok(Topology::Sharded(ShardConfig::new(shards, migration)?))
    }

    /// Number of shards (1 for a well-mixed group).
    pub fn shard_count(&self) -> usize {
        match self {
            Topology::WellMixed => 1,
            Topology::Sharded(config) => config.shards(),
        }
    }

    /// `true` if this is a sharded topology (even with a single shard:
    /// explicit sharding selects the sharded runtime tier).
    pub fn is_sharded(&self) -> bool {
        matches!(self, Topology::Sharded(_))
    }

    /// The shard configuration, if sharded.
    pub fn shard_config(&self) -> Option<&ShardConfig> {
        match self {
            Topology::WellMixed => None,
            Topology::Sharded(config) => Some(config),
        }
    }
}

/// Configuration of a sharded topology: shard count, per-period migration
/// probability and the initial placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    shards: usize,
    migration: f64,
    placement: Placement,
}

impl ShardConfig {
    /// Creates a configuration of `shards` shards where every alive process
    /// independently emigrates with probability `migration` at each period
    /// boundary, landing in a uniformly random (non-partitioned) shard.
    ///
    /// `migration = 1.0` therefore reshuffles the whole population every
    /// period — statistically equivalent to well-mixed interaction, which is
    /// what the sharded-vs-batched equivalence tests pin.
    ///
    /// # Errors
    ///
    /// Returns an error if `shards` is zero or `migration` lies outside
    /// `[0, 1]`.
    pub fn new(shards: usize, migration: f64) -> Result<Self> {
        if shards == 0 {
            return Err(SimError::InvalidConfig {
                name: "shards",
                reason: "a sharded topology needs at least one shard".into(),
            });
        }
        check_probability("migration", migration)?;
        Ok(ShardConfig {
            shards,
            migration,
            placement: Placement::Blocks,
        })
    }

    /// Sets the initial placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-period, per-process emigration probability.
    pub fn migration(&self) -> f64 {
        self.migration
    }

    /// The initial placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }
}

/// How the initial state distribution is laid out across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Processes are placed in contiguous blocks in state order: shard 0
    /// fills first, so a small minority state (e.g. the epidemic seed)
    /// concentrates in the **last** shard — the natural setup for
    /// "epidemic crossing shard boundaries" experiments.
    #[default]
    Blocks,
    /// Each state's population is split across shards as a uniform
    /// multinomial draw (every process lands in an independently uniform
    /// shard), so all shards start statistically identical.
    Uniform,
}

/// A massive failure targeting a single shard: at `period`, `fraction` of the
/// shard's alive processes crash (a uniformly random subset of that shard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFailure {
    /// The period at which the failure strikes.
    pub period: u64,
    /// The shard it strikes.
    pub shard: usize,
    /// The fraction of the shard's alive processes that crash.
    pub fraction: f64,
}

/// A temporary network partition of one shard: during
/// `from_period ..= to_period` no process migrates into or out of `shard`
/// (its internal mixing and failures continue unaffected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    /// The partitioned shard.
    pub shard: usize,
    /// First period of the partition (inclusive).
    pub from_period: u64,
    /// Last period of the partition (inclusive).
    pub to_period: u64,
}

impl ShardPartition {
    /// `true` if the partition is in force at `period`.
    pub fn active_at(&self, period: u64) -> bool {
        (self.from_period..=self.to_period).contains(&period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_constructors_and_accessors() {
        let well_mixed = Topology::default();
        assert_eq!(well_mixed, Topology::WellMixed);
        assert_eq!(well_mixed.shard_count(), 1);
        assert!(!well_mixed.is_sharded());
        assert!(well_mixed.shard_config().is_none());

        let sharded = Topology::sharded(8, 0.01).unwrap();
        assert_eq!(sharded.shard_count(), 8);
        assert!(sharded.is_sharded());
        let config = sharded.shard_config().unwrap();
        assert_eq!(config.shards(), 8);
        assert_eq!(config.migration(), 0.01);
        assert_eq!(config.placement(), Placement::Blocks);

        // A single explicit shard is still "sharded" (it selects the sharded
        // runtime; semantics match the well-mixed group).
        assert!(Topology::sharded(1, 0.5).unwrap().is_sharded());
        assert_eq!(Topology::sharded(1, 0.5).unwrap().shard_count(), 1);
    }

    #[test]
    fn shard_config_validation() {
        assert!(ShardConfig::new(0, 0.1).is_err());
        assert!(ShardConfig::new(4, -0.1).is_err());
        assert!(ShardConfig::new(4, 1.5).is_err());
        let config = ShardConfig::new(4, 1.0)
            .unwrap()
            .with_placement(Placement::Uniform);
        assert_eq!(config.placement(), Placement::Uniform);
    }

    #[test]
    fn partition_window_is_inclusive() {
        let p = ShardPartition {
            shard: 2,
            from_period: 5,
            to_period: 9,
        };
        assert!(!p.active_at(4));
        assert!(p.active_at(5));
        assert!(p.active_at(9));
        assert!(!p.active_at(10));
    }
}
