//! Protocol-period bookkeeping.
//!
//! The paper's protocols execute their actions once per *protocol period*
//! (6 minutes in the endemic experiments, ~1 s in the LV discussion). The
//! analysis only depends on the average period across the group, so the
//! simulator advances in whole periods; this module converts between period
//! indices and wall-clock time and models bounded per-process drift.

use crate::error::SimError;
use crate::rng::Rng;
use crate::Result;

/// Converts between protocol periods and wall-clock seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeriodClock {
    period_secs: f64,
    drift_bound: f64,
}

impl PeriodClock {
    /// Creates a clock with the given period length in seconds and no drift.
    ///
    /// # Errors
    ///
    /// Returns an error if the period is not finite and positive.
    pub fn new(period_secs: f64) -> Result<Self> {
        if !period_secs.is_finite() || period_secs <= 0.0 {
            return Err(SimError::InvalidConfig {
                name: "period_secs",
                reason: format!("period must be positive, got {period_secs}"),
            });
        }
        Ok(PeriodClock {
            period_secs,
            drift_bound: 0.0,
        })
    }

    /// The paper's endemic-experiment setting: a 6-minute protocol period.
    pub fn six_minutes() -> Self {
        PeriodClock {
            period_secs: 360.0,
            drift_bound: 0.0,
        }
    }

    /// Sets the bounded relative clock drift (e.g. `0.01` = ±1 %) used when
    /// sampling per-process period lengths.
    ///
    /// # Errors
    ///
    /// Returns an error if the bound is negative, not finite, or ≥ 1.
    pub fn with_drift_bound(mut self, drift_bound: f64) -> Result<Self> {
        if !drift_bound.is_finite() || !(0.0..1.0).contains(&drift_bound) {
            return Err(SimError::InvalidConfig {
                name: "drift_bound",
                reason: format!("drift bound must lie in [0, 1), got {drift_bound}"),
            });
        }
        self.drift_bound = drift_bound;
        Ok(self)
    }

    /// The nominal period length in seconds.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// The configured relative drift bound.
    pub fn drift_bound(&self) -> f64 {
        self.drift_bound
    }

    /// Wall-clock time (seconds) at the start of period `period`.
    pub fn period_to_secs(&self, period: u64) -> f64 {
        period as f64 * self.period_secs
    }

    /// Wall-clock time in hours at the start of period `period`.
    pub fn period_to_hours(&self, period: u64) -> f64 {
        self.period_to_secs(period) / 3600.0
    }

    /// The period index containing wall-clock time `secs`.
    pub fn secs_to_period(&self, secs: f64) -> u64 {
        if secs <= 0.0 {
            0
        } else {
            (secs / self.period_secs).floor() as u64
        }
    }

    /// Number of whole protocol periods per hour (at least 1).
    pub fn periods_per_hour(&self) -> u64 {
        ((3600.0 / self.period_secs).round() as u64).max(1)
    }

    /// Samples one process's actual period length, uniformly within the drift
    /// bound around the nominal period.
    pub fn sample_period(&self, rng: &mut Rng) -> f64 {
        if self.drift_bound == 0.0 {
            self.period_secs
        } else {
            self.period_secs * rng.uniform(1.0 - self.drift_bound, 1.0 + self.drift_bound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        assert!(PeriodClock::new(0.0).is_err());
        assert!(PeriodClock::new(f64::NAN).is_err());
        let c = PeriodClock::new(60.0).unwrap();
        assert_eq!(c.period_secs(), 60.0);
        assert!(c.with_drift_bound(1.5).is_err());
        assert!(c.with_drift_bound(-0.1).is_err());
        assert_eq!(c.with_drift_bound(0.05).unwrap().drift_bound(), 0.05);
    }

    #[test]
    fn six_minute_period_conversions() {
        let c = PeriodClock::six_minutes();
        assert_eq!(c.period_secs(), 360.0);
        assert_eq!(c.periods_per_hour(), 10);
        assert_eq!(c.period_to_secs(10), 3600.0);
        assert_eq!(c.period_to_hours(10), 1.0);
        assert_eq!(c.secs_to_period(3599.0), 9);
        assert_eq!(c.secs_to_period(3600.0), 10);
        assert_eq!(c.secs_to_period(-5.0), 0);
    }

    #[test]
    fn drift_sampling_is_bounded() {
        let c = PeriodClock::new(100.0)
            .unwrap()
            .with_drift_bound(0.1)
            .unwrap();
        let mut rng = Rng::seed_from(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let p = c.sample_period(&mut rng);
            assert!((90.0..110.0).contains(&p));
            sum += p;
        }
        // Mean period stays near the nominal period (the paper's analysis uses
        // the group-average period).
        assert!((sum / 10_000.0 - 100.0).abs() < 0.5);
        // No drift configured → exactly nominal.
        let c0 = PeriodClock::new(100.0).unwrap();
        assert_eq!(c0.sample_period(&mut rng), 100.0);
    }
}
