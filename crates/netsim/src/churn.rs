//! Host churn: availability traces and a synthetic Overnet-like generator.
//!
//! The paper's churn experiments (Figures 9 and 10) inject hourly
//! join/leave events taken from Overnet availability traces into a 2000-host
//! system, with hourly churn rates of 10–25 % of the system size, and spread
//! each hour's changes uniformly over that hour (the protocol period being 6
//! minutes). Real traces are not redistributable, so this module provides:
//!
//! * [`ChurnTrace`] — an hourly availability matrix, loadable from a simple
//!   text format so real traces *can* be replayed if available,
//! * [`SyntheticChurnConfig`] — a generator producing traces with a target
//!   mean availability and hourly churn band, matching the statistics the
//!   paper quotes,
//! * [`ChurnEvent`] — per-protocol-period join/leave events obtained by
//!   spreading each hour's changes across the hour.

use crate::error::{check_probability, SimError};
use crate::group::ProcessId;
use crate::rng::Rng;
use crate::Result;

/// Join/leave events to apply at the start of one protocol period.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnEvent {
    /// The protocol period at which these events fire.
    pub period: u64,
    /// Hosts that join (become alive) at this period.
    pub joins: Vec<ProcessId>,
    /// Hosts that leave (crash / depart) at this period.
    pub leaves: Vec<ProcessId>,
}

/// An hourly host-availability trace: `availability[hour][host]`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnTrace {
    availability: Vec<Vec<bool>>,
    hosts: usize,
}

impl ChurnTrace {
    /// Builds a trace from an availability matrix (`matrix[hour][host]`).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is empty or rows have differing lengths.
    pub fn from_availability(matrix: Vec<Vec<bool>>) -> Result<Self> {
        let hosts = matrix.first().map(Vec::len).unwrap_or(0);
        if matrix.is_empty() || hosts == 0 {
            return Err(SimError::InvalidConfig {
                name: "availability",
                reason: "trace must cover at least one hour and one host".into(),
            });
        }
        if matrix.iter().any(|row| row.len() != hosts) {
            return Err(SimError::InvalidConfig {
                name: "availability",
                reason: "all hours must cover the same number of hosts".into(),
            });
        }
        Ok(ChurnTrace {
            availability: matrix,
            hosts,
        })
    }

    /// Parses the simple text format: one line per hour, one `0`/`1` character
    /// per host (whitespace ignored). This is the format real traces can be
    /// converted into for replay.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown characters or ragged lines.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut matrix = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut row = Vec::new();
            for c in line.chars().filter(|c| !c.is_whitespace()) {
                match c {
                    '0' => row.push(false),
                    '1' => row.push(true),
                    other => {
                        return Err(SimError::InvalidConfig {
                            name: "trace",
                            reason: format!("unexpected character `{other}` in trace"),
                        })
                    }
                }
            }
            matrix.push(row);
        }
        Self::from_availability(matrix)
    }

    /// Renders the trace in the text format accepted by [`from_text`](Self::from_text).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for row in &self.availability {
            for &a in row {
                out.push(if a { '1' } else { '0' });
            }
            out.push('\n');
        }
        out
    }

    /// Number of hours covered by the trace.
    pub fn hours(&self) -> usize {
        self.availability.len()
    }

    /// Number of hosts covered by the trace.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Whether `host` is available during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn available(&self, hour: usize, host: usize) -> bool {
        self.availability[hour][host]
    }

    /// Fraction of hosts available during `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is out of range.
    pub fn availability_at(&self, hour: usize) -> f64 {
        let row = &self.availability[hour];
        row.iter().filter(|&&a| a).count() as f64 / self.hosts as f64
    }

    /// Fraction of hosts whose availability changed between `hour - 1` and
    /// `hour` (the hourly churn rate). Hour 0 has churn 0 by definition.
    ///
    /// # Panics
    ///
    /// Panics if `hour` is out of range.
    pub fn hourly_churn(&self, hour: usize) -> f64 {
        if hour == 0 {
            return 0.0;
        }
        let prev = &self.availability[hour - 1];
        let cur = &self.availability[hour];
        let changes = prev.iter().zip(cur).filter(|(a, b)| a != b).count();
        changes as f64 / self.hosts as f64
    }

    /// Mean hourly churn over the whole trace.
    pub fn mean_hourly_churn(&self) -> f64 {
        if self.hours() <= 1 {
            return 0.0;
        }
        (1..self.hours()).map(|h| self.hourly_churn(h)).sum::<f64>() / (self.hours() - 1) as f64
    }

    /// Converts the hourly trace into per-period [`ChurnEvent`]s, spreading
    /// each hour's changes uniformly at random over that hour's
    /// `periods_per_hour` protocol periods (as the paper does).
    ///
    /// Hour `h` occupies periods `[h·periods_per_hour, (h+1)·periods_per_hour)`.
    /// The initial availability (hour 0) is *not* emitted as events; apply it
    /// directly to the group before starting the run.
    pub fn spread_over_periods(&self, periods_per_hour: u64, rng: &mut Rng) -> Vec<ChurnEvent> {
        let periods_per_hour = periods_per_hour.max(1);
        let mut events: Vec<ChurnEvent> = Vec::new();
        for hour in 1..self.hours() {
            let base_period = hour as u64 * periods_per_hour;
            let mut per_period: Vec<ChurnEvent> = (0..periods_per_hour)
                .map(|k| ChurnEvent {
                    period: base_period + k,
                    ..Default::default()
                })
                .collect();
            for host in 0..self.hosts {
                let before = self.availability[hour - 1][host];
                let after = self.availability[hour][host];
                if before == after {
                    continue;
                }
                let slot = rng.index(periods_per_hour as usize);
                if after {
                    per_period[slot].joins.push(ProcessId(host));
                } else {
                    per_period[slot].leaves.push(ProcessId(host));
                }
            }
            events.extend(
                per_period
                    .into_iter()
                    .filter(|e| !e.joins.is_empty() || !e.leaves.is_empty()),
            );
        }
        events
    }

    /// Initial availability (hour 0) as a boolean vector indexed by host.
    pub fn initial_availability(&self) -> &[bool] {
        &self.availability[0]
    }
}

/// Configuration for the synthetic Overnet-like churn generator.
///
/// Each hour, an available host departs with probability `churn/2·availability`
/// and an unavailable host joins with probability `churn/2·(1−availability)`,
/// where `churn` is drawn uniformly from the configured hourly band — this
/// keeps mean availability stationary while producing the target hourly churn
/// (10–25 % of the system in the paper's experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyntheticChurnConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Number of hours to generate.
    pub hours: usize,
    /// Long-run fraction of hosts that are available.
    pub mean_availability: f64,
    /// Lower bound of the hourly churn rate (fraction of the system).
    pub churn_min: f64,
    /// Upper bound of the hourly churn rate (fraction of the system).
    pub churn_max: f64,
}

impl Default for SyntheticChurnConfig {
    fn default() -> Self {
        // The paper's Figure 9/10 setting: 2000 hosts, hourly churn 10–25 %.
        SyntheticChurnConfig {
            hosts: 2000,
            hours: 200,
            mean_availability: 0.7,
            churn_min: 0.10,
            churn_max: 0.25,
        }
    }
}

impl SyntheticChurnConfig {
    /// Generates a trace from this configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if sizes are zero or probabilities are out of range.
    pub fn generate(&self, rng: &mut Rng) -> Result<ChurnTrace> {
        if self.hosts == 0 || self.hours == 0 {
            return Err(SimError::InvalidConfig {
                name: "hosts/hours",
                reason: "must be positive".into(),
            });
        }
        check_probability("mean_availability", self.mean_availability)?;
        check_probability("churn_min", self.churn_min)?;
        check_probability("churn_max", self.churn_max)?;
        if self.churn_min > self.churn_max {
            return Err(SimError::InvalidConfig {
                name: "churn_min",
                reason: "churn_min must not exceed churn_max".into(),
            });
        }
        let a = self.mean_availability.clamp(0.01, 0.99);
        let mut matrix = Vec::with_capacity(self.hours);
        let mut current: Vec<bool> = (0..self.hosts).map(|_| rng.chance(a)).collect();
        matrix.push(current.clone());
        for _ in 1..self.hours {
            let churn = rng.uniform(self.churn_min, self.churn_max);
            let p_leave = (churn / (2.0 * a)).min(1.0);
            let p_join = (churn / (2.0 * (1.0 - a))).min(1.0);
            for state in current.iter_mut() {
                if *state {
                    if rng.chance(p_leave) {
                        *state = false;
                    }
                } else if rng.chance(p_join) {
                    *state = true;
                }
            }
            matrix.push(current.clone());
        }
        ChurnTrace::from_availability(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_construction_and_validation() {
        assert!(ChurnTrace::from_availability(vec![]).is_err());
        assert!(ChurnTrace::from_availability(vec![vec![]]).is_err());
        assert!(ChurnTrace::from_availability(vec![vec![true], vec![true, false]]).is_err());
        let t = ChurnTrace::from_availability(vec![vec![true, false], vec![false, false]]).unwrap();
        assert_eq!(t.hours(), 2);
        assert_eq!(t.hosts(), 2);
        assert!(t.available(0, 0));
        assert!(!t.available(1, 0));
        assert_eq!(t.availability_at(0), 0.5);
        assert_eq!(t.hourly_churn(0), 0.0);
        assert_eq!(t.hourly_churn(1), 0.5);
        assert_eq!(t.initial_availability(), &[true, false]);
    }

    #[test]
    fn a_changeless_trace_spreads_to_no_events() {
        // Constant availability means zero churn: spreading must emit an
        // empty event list (not empty per-period placeholders), for any
        // periods-per-hour granularity including the degenerate 0 → 1 clamp.
        let t = ChurnTrace::from_availability(vec![vec![true, false, true]; 4]).unwrap();
        for periods_per_hour in [0, 1, 7] {
            let mut rng = Rng::seed_from(11);
            assert!(t.spread_over_periods(periods_per_hour, &mut rng).is_empty());
        }
        assert_eq!(t.mean_hourly_churn(), 0.0);
    }

    #[test]
    fn an_all_leave_hour_empties_the_group_and_nobody_joins() {
        // Hour 1 takes every host down at once — the heaviest churn spike the
        // format can express. Every change must surface as a leave, none as a
        // join, and the leave set must cover each host exactly once.
        let t = ChurnTrace::from_availability(vec![vec![true; 5], vec![false; 5]]).unwrap();
        assert_eq!(t.hourly_churn(1), 1.0);
        assert_eq!(t.availability_at(1), 0.0);
        let mut rng = Rng::seed_from(3);
        let events = t.spread_over_periods(4, &mut rng);
        assert!(events.iter().all(|e| e.joins.is_empty()));
        let mut left: Vec<usize> = events
            .iter()
            .flat_map(|e| e.leaves.iter().map(|p| p.index()))
            .collect();
        left.sort_unstable();
        assert_eq!(left, vec![0, 1, 2, 3, 4]);
        // All leaves land inside hour 1's period window.
        assert!(events.iter().all(|e| (4..8).contains(&e.period)));
    }

    #[test]
    fn spreading_is_deterministic_under_a_fixed_seed() {
        // Replay guarantee: the same trace spread with the same seed yields
        // the identical event list, bit for bit; a different seed moves the
        // events to different slots within the same hour windows.
        let cfg = SyntheticChurnConfig {
            hosts: 60,
            hours: 6,
            mean_availability: 0.7,
            churn_min: 0.2,
            churn_max: 0.4,
        };
        let trace = cfg.generate(&mut Rng::seed_from(9)).unwrap();
        let spread = |seed: u64| trace.spread_over_periods(10, &mut Rng::seed_from(seed));
        assert_eq!(spread(21), spread(21));
        assert_ne!(spread(21), spread(22), "different seeds should differ");
    }

    #[test]
    fn text_round_trip() {
        let text = "# two hosts\n10\n01\n11\n";
        let t = ChurnTrace::from_text(text).unwrap();
        assert_eq!(t.hours(), 3);
        assert_eq!(t.hosts(), 2);
        let t2 = ChurnTrace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, t2);
        assert!(ChurnTrace::from_text("1x\n").is_err());
        assert!(ChurnTrace::from_text("").is_err());
    }

    #[test]
    fn synthetic_trace_matches_target_statistics() {
        let cfg = SyntheticChurnConfig {
            hosts: 2000,
            hours: 100,
            mean_availability: 0.7,
            churn_min: 0.10,
            churn_max: 0.25,
        };
        let mut rng = Rng::seed_from(42);
        let trace = cfg.generate(&mut rng).unwrap();
        assert_eq!(trace.hours(), 100);
        assert_eq!(trace.hosts(), 2000);
        // Mean availability stays near the target.
        let mean_avail: f64 = (0..trace.hours())
            .map(|h| trace.availability_at(h))
            .sum::<f64>()
            / 100.0;
        assert!((mean_avail - 0.7).abs() < 0.05, "availability {mean_avail}");
        // Mean hourly churn falls inside the configured band (generously).
        let churn = trace.mean_hourly_churn();
        assert!(churn > 0.08 && churn < 0.30, "churn {churn}");
        // Every individual hour stays within a loose band too.
        for h in 1..trace.hours() {
            assert!(trace.hourly_churn(h) < 0.4);
        }
    }

    #[test]
    fn synthetic_config_validation() {
        let mut rng = Rng::seed_from(1);
        let bad = SyntheticChurnConfig {
            hosts: 0,
            ..Default::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = SyntheticChurnConfig {
            churn_min: 0.5,
            churn_max: 0.2,
            ..Default::default()
        };
        assert!(bad.generate(&mut rng).is_err());
        let bad = SyntheticChurnConfig {
            mean_availability: 1.5,
            ..Default::default()
        };
        assert!(bad.generate(&mut rng).is_err());
    }

    #[test]
    fn spreading_preserves_all_changes() {
        let cfg = SyntheticChurnConfig {
            hosts: 500,
            hours: 10,
            mean_availability: 0.6,
            churn_min: 0.1,
            churn_max: 0.2,
        };
        let mut rng = Rng::seed_from(7);
        let trace = cfg.generate(&mut rng).unwrap();
        let events = trace.spread_over_periods(10, &mut rng);
        // Total joins/leaves across events equals total hourly changes.
        let mut total_changes = 0usize;
        for h in 1..trace.hours() {
            total_changes += (trace.hourly_churn(h) * trace.hosts() as f64).round() as usize;
        }
        let event_changes: usize = events.iter().map(|e| e.joins.len() + e.leaves.len()).sum();
        assert_eq!(event_changes, total_changes);
        // Events fall within the trace's period range and are tagged per hour.
        for e in &events {
            assert!(e.period >= 10 && e.period < 100);
        }
        // periods_per_hour of 0 is clamped.
        let ev0 = trace.spread_over_periods(0, &mut rng);
        assert!(!ev0.is_empty());
    }
}
