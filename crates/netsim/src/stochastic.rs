//! Distribution sampling for the aggregate (count-based) protocol runtime.
//!
//! The aggregate runtime in `dpde-core` advances a protocol by sampling *how
//! many* of the processes in a state take a transition each period, which
//! requires binomial and multinomial draws. `rand_distr` is not part of the
//! offline dependency set, so the samplers are implemented here:
//!
//! * exact inverse-CDF binomial sampling for small `n·p`,
//! * a normal-approximation (with continuity correction) fallback for large
//!   counts, accurate to well below the stochastic noise of the experiments,
//! * sequential-conditional multinomial sampling built on the binomial.

use crate::rng::Rng;

/// Draws from `Binomial(n, p)`: the number of successes in `n` independent
/// Bernoulli(`p`) trials.
///
/// Uses exact inversion when the expected count is small and a
/// continuity-corrected normal approximation otherwise. `p` is clamped to
/// `[0, 1]`.
pub fn binomial(rng: &mut Rng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work with the smaller tail for numerical stability.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mean = n as f64 * p;
    if n <= 64 {
        // Direct simulation is cheapest for tiny n.
        let mut count = 0;
        for _ in 0..n {
            if rng.chance(p) {
                count += 1;
            }
        }
        count
    } else if mean < 30.0 {
        binomial_inverse(rng, n, p)
    } else {
        binomial_normal_approx(rng, n, p)
    }
}

/// Exact inverse-CDF binomial sampling (efficient when `n·p` is small).
fn binomial_inverse(rng: &mut Rng, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let mut f = q.powf(n as f64); // P(X = 0)
    if f <= 0.0 {
        // Underflow (extremely unlikely given the mean < 30 guard); fall back.
        return binomial_normal_approx(rng, n, p);
    }
    let u = rng.next_f64();
    let mut cdf = f;
    let mut k = 0u64;
    while u > cdf && k < n {
        k += 1;
        f *= s * (n - k + 1) as f64 / k as f64;
        cdf += f;
    }
    k
}

/// Normal approximation with continuity correction, clamped to `[0, n]`.
fn binomial_normal_approx(rng: &mut Rng, n: u64, p: f64) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    let value = (mean + sd * z + 0.5).floor();
    value.clamp(0.0, n as f64) as u64
}

/// Draws a standard normal variate using the Box–Muller transform.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    // Avoid log(0).
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from `Multinomial(n, weights)`: distributes `n` trials over
/// `weights.len()` categories with probabilities proportional to `weights`.
///
/// Zero or negative weights get zero probability; if all weights are zero the
/// result is all zeros except that no trials are assigned at all.
pub fn multinomial(rng: &mut Rng, n: u64, weights: &[f64]) -> Vec<u64> {
    let mut counts = vec![0u64; weights.len()];
    let mut remaining = n;
    let mut weight_left: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    for (i, w) in weights.iter().enumerate() {
        if remaining == 0 || weight_left <= 0.0 {
            break;
        }
        let w = w.max(0.0);
        if i + 1 == weights.len() {
            counts[i] = remaining;
            remaining = 0;
        } else {
            let p = (w / weight_left).clamp(0.0, 1.0);
            let k = binomial(rng, remaining, p);
            counts[i] = k;
            remaining -= k;
            weight_left -= w;
        }
    }
    counts
}

/// Samples `k` distinct indices uniformly at random from `0..n` (Floyd's
/// algorithm). If `k >= n` every index is returned.
pub fn sample_without_replacement(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Floyd's algorithm keeps memory at O(k).
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.index(j + 1);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Draws from a geometric distribution: the number of independent
/// Bernoulli(`p`) failures before the first success. Returns `u64::MAX` when
/// `p <= 0`.
pub fn geometric(rng: &mut Rng, p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 0;
    }
    let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(0xD1CE)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        assert_eq!(binomial(&mut r, 100, -0.5), 0);
        assert_eq!(binomial(&mut r, 100, 1.5), 100);
    }

    #[test]
    fn binomial_moments_small_n() {
        let mut r = rng();
        let (n, p, draws) = (40u64, 0.2, 20_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / draws as f64;
        assert!((mean - n as f64 * p).abs() < 0.2, "mean {mean}");
        assert!((var - n as f64 * p * (1.0 - p)).abs() < 0.5, "var {var}");
    }

    #[test]
    fn binomial_moments_inverse_cdf_regime() {
        let mut r = rng();
        // n large, mean < 30 → inverse CDF path.
        let (n, p, draws) = (10_000u64, 0.001, 20_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|&x| x <= n));
    }

    #[test]
    fn binomial_moments_normal_approx_regime() {
        let mut r = rng();
        let (n, p, draws) = (100_000u64, 0.3, 5_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        let expected = n as f64 * p;
        assert!((mean - expected).abs() < expected * 0.005, "mean {mean}");
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / draws as f64;
        assert!((var.sqrt() - sd).abs() < sd * 0.1);
    }

    #[test]
    fn binomial_large_p_symmetry() {
        let mut r = rng();
        let (n, draws) = (1000u64, 10_000);
        let mean: f64 = (0..draws)
            .map(|_| binomial(&mut r, n, 0.97) as f64)
            .sum::<f64>()
            / draws as f64;
        assert!((mean - 970.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn normal_variate_moments() {
        let mut r = rng();
        let draws = 100_000;
        let samples: Vec<f64> = (0..draws).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn multinomial_conserves_total_and_proportions() {
        let mut r = rng();
        let weights = [0.5, 0.3, 0.2];
        let mut totals = [0u64; 3];
        let draws = 2_000;
        let n = 1_000;
        for _ in 0..draws {
            let counts = multinomial(&mut r, n, &weights);
            assert_eq!(counts.iter().sum::<u64>(), n);
            for (t, c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        let total = (draws * n) as f64;
        for (t, w) in totals.iter().zip(&weights) {
            assert!((*t as f64 / total - w).abs() < 0.01);
        }
    }

    #[test]
    fn multinomial_degenerate_weights() {
        let mut r = rng();
        let counts = multinomial(&mut r, 100, &[0.0, 0.0, 1.0]);
        assert_eq!(counts, vec![0, 0, 100]);
        let counts = multinomial(&mut r, 100, &[0.0, 0.0]);
        assert_eq!(counts.iter().sum::<u64>(), 0);
        let counts = multinomial(&mut r, 0, &[0.2, 0.8]);
        assert_eq!(counts, vec![0, 0]);
        // Negative weights are treated as zero.
        let counts = multinomial(&mut r, 50, &[-1.0, 1.0]);
        assert_eq!(counts, vec![0, 50]);
    }

    #[test]
    fn sampling_without_replacement_is_distinct_and_uniform() {
        let mut r = rng();
        for _ in 0..500 {
            let s = sample_without_replacement(&mut r, 20, 5);
            assert_eq!(s.len(), 5);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
        // k >= n returns everything.
        assert_eq!(sample_without_replacement(&mut r, 4, 10), vec![0, 1, 2, 3]);
        // Coverage: each index selected roughly equally often.
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            for i in sample_without_replacement(&mut r, 10, 3) {
                hits[i] += 1;
            }
        }
        for &h in &hits {
            assert!((h as f64 - 3_000.0).abs() < 300.0, "hits {h}");
        }
    }

    #[test]
    fn geometric_moments_and_edges() {
        let mut r = rng();
        assert_eq!(geometric(&mut r, 1.0), 0);
        assert_eq!(geometric(&mut r, 0.0), u64::MAX);
        let p = 0.25;
        let draws = 50_000;
        let mean: f64 = (0..draws).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / draws as f64;
        // E[failures before success] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
