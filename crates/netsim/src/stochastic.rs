//! Distribution sampling for the count-level protocol runtimes.
//!
//! The batched and aggregate runtimes in `dpde-core` advance a protocol by
//! sampling *how many* of the processes in a state take a transition each
//! period, which requires binomial, multinomial and hypergeometric draws.
//! `rand_distr` is not part of the offline dependency set, so the samplers
//! are implemented here as inherent methods on [`Rng`]:
//!
//! * [`Rng::binomial`] — a BINV-style inverse-CDF walk for small expected
//!   counts, direct simulation for tiny `n`, and a continuity-corrected
//!   normal-tail approximation for large counts (accurate to well below the
//!   stochastic noise of the experiments);
//! * [`Rng::multinomial_into`] — sequential-conditional multinomial sampling
//!   built on the binomial, writing into a caller-provided buffer so the
//!   per-period hot path allocates nothing;
//! * [`Rng::hypergeometric`] — draws without replacement, used to split
//!   count-level massive failures across protocol states.
//!
//! The free functions ([`binomial`], [`multinomial`], …) are thin wrappers
//! kept for callers that prefer the function form.

use crate::rng::Rng;

/// Expected-count threshold below which the samplers use exact inverse-CDF
/// walks; above it the normal approximation's error is far below the
/// stochastic noise of the experiments.
///
/// This constant is part of the crate's contract with the count-level
/// runtimes in `dpde-core`: a binomial draw with `min(n·p, n·(1−p))` below
/// this cutoff is **exact** (the clamped-normal tail is never taken), so
/// absorbing boundaries stay reachable — `P[X = 0]` is preserved bit-for-bit
/// against the analytic `(1−p)^n`, which is what makes extinction phenomena
/// trustworthy at count level. The hybrid runtime uses the same cutoff as its
/// default membership-fidelity threshold.
pub const NORMAL_APPROX_CUTOFF: f64 = 30.0;

impl Rng {
    /// Draws from `Binomial(n, p)`: the number of successes in `n`
    /// independent Bernoulli(`p`) trials. `p` is clamped to `[0, 1]`.
    ///
    /// Uses direct simulation for tiny `n`, a BINV-style inverse-CDF walk
    /// while the expected count is small, and a continuity-corrected normal
    /// approximation for the large-mean tail.
    ///
    /// # Examples
    ///
    /// ```
    /// use netsim::Rng;
    ///
    /// let mut rng = Rng::seed_from(7);
    /// let k = rng.binomial(1_000_000, 0.25);
    /// assert!((200_000..300_000).contains(&k));
    /// ```
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Work with the smaller tail for numerical stability. After the
        // mirror p ≤ 1/2, so the mean below *is* min(n·p, n·(1−p)) — the
        // exactness condition of [`NORMAL_APPROX_CUTOFF`]: the clamped-normal
        // path is only ever taken when both tails carry expected counts of at
        // least the cutoff.
        if p > 0.5 {
            return n - self.binomial(n, 1.0 - p);
        }
        let mean = n as f64 * p;
        if n <= 64 {
            // Direct simulation is cheapest for tiny n.
            let mut count = 0;
            for _ in 0..n {
                if self.chance(p) {
                    count += 1;
                }
            }
            count
        } else if mean < NORMAL_APPROX_CUTOFF {
            self.binomial_inverse(n, p)
        } else {
            self.binomial_normal_approx(n, p)
        }
    }

    /// BINV: exact inverse-CDF binomial sampling (efficient when `n·p` is
    /// small).
    fn binomial_inverse(&mut self, n: u64, p: f64) -> u64 {
        let q = 1.0 - p;
        let s = p / q;
        let mut f = q.powf(n as f64); // P(X = 0)
        if f <= 0.0 {
            // Underflow (extremely unlikely given the mean < 30 guard); fall
            // back to the normal tail.
            return self.binomial_normal_approx(n, p);
        }
        let u = self.next_f64();
        let mut cdf = f;
        let mut k = 0u64;
        while u > cdf && k < n {
            k += 1;
            f *= s * (n - k + 1) as f64 / k as f64;
            cdf += f;
        }
        k
    }

    /// Normal approximation with continuity correction, clamped to `[0, n]`.
    fn binomial_normal_approx(&mut self, n: u64, p: f64) -> u64 {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = self.standard_normal();
        let value = (mean + sd * z + 0.5).floor();
        value.clamp(0.0, n as f64) as u64
    }

    /// Draws a standard normal variate using the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws from `Multinomial(n, weights)` into `out`, distributing `n`
    /// trials over `weights.len()` categories with probabilities proportional
    /// to `weights` — the allocation-free form used by the batched runtime's
    /// hot loop.
    ///
    /// Zero or negative weights get zero probability; if all weights are zero
    /// no trials are assigned at all.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != weights.len()`.
    pub fn multinomial_into(&mut self, n: u64, weights: &[f64], out: &mut [u64]) {
        assert_eq!(
            out.len(),
            weights.len(),
            "output buffer must match the category count"
        );
        out.fill(0);
        let mut remaining = n;
        let mut weight_left: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        for (i, w) in weights.iter().enumerate() {
            if remaining == 0 || weight_left <= 0.0 {
                break;
            }
            let w = w.max(0.0);
            if i + 1 == weights.len() {
                out[i] = remaining;
                remaining = 0;
            } else {
                let p = (w / weight_left).clamp(0.0, 1.0);
                let k = self.binomial(remaining, p);
                out[i] = k;
                remaining -= k;
                weight_left -= w;
            }
        }
    }

    /// Allocating convenience form of [`multinomial_into`](Self::multinomial_into).
    pub fn multinomial(&mut self, n: u64, weights: &[f64]) -> Vec<u64> {
        let mut out = vec![0u64; weights.len()];
        self.multinomial_into(n, weights, &mut out);
        out
    }

    /// Draws from `Hypergeometric(population, successes, draws)`: the number
    /// of marked items obtained when drawing `draws` items without
    /// replacement from a population of `population` items of which
    /// `successes` are marked.
    ///
    /// This is how count-level runtimes split a massive failure across
    /// protocol states: crashing `k` of `N` alive processes hits each state's
    /// population hypergeometrically.
    ///
    /// Uses the exact inverse-CDF walk while the expected count is small, and
    /// a clamped normal approximation otherwise. Complement mirrors fold both
    /// parameters to at most half the population first, which guarantees the
    /// exact walk (starting at `k = 0`) is valid for **every** small-mean
    /// case: the support's lower bound `max(0, draws + successes − N)` is
    /// zero after mirroring, so the clamped-normal path is never taken below
    /// [`NORMAL_APPROX_CUTOFF`] and boundary outcomes near absorbing states
    /// keep their exact probabilities. (Before the mirrors, a draw covering
    /// most of the population — e.g. a 90 % massive failure hitting a small
    /// state — skipped the exact walk even at tiny means.)
    pub fn hypergeometric(&mut self, population: u64, successes: u64, draws: u64) -> u64 {
        let successes = successes.min(population);
        let draws = draws.min(population);
        if successes == 0 || draws == 0 {
            return 0;
        }
        if draws == population {
            return successes;
        }
        if successes == population {
            return draws;
        }
        // Complement mirrors: the overlap of the drawn set with the marked
        // set determines (and is determined by) the overlap with either
        // complement, so fold both parameters below N/2.
        if draws > population - draws {
            return successes - self.hypergeometric(population, successes, population - draws);
        }
        if successes > population - successes {
            return draws - self.hypergeometric(population, population - successes, draws);
        }
        // From here draws + successes ≤ N: the support starts at 0.
        let n = population as f64;
        let mean = draws as f64 * successes as f64 / n;
        let hi = successes.min(draws);
        if mean < NORMAL_APPROX_CUTOFF {
            // X is symmetric in (successes, draws): it counts the overlap of
            // two uniformly random subsets of those sizes. Walk over the
            // smaller so P(X = 0) is a short product.
            let (k_small, k_large) = if successes <= draws {
                (successes, draws)
            } else {
                (draws, successes)
            };
            // P(X = 0) = Π_{i=0}^{k_small-1} (N - k_large - i) / (N - i).
            let mut f = 1.0f64;
            for i in 0..k_small {
                f *= (population - k_large - i) as f64 / (population - i) as f64;
            }
            if f > 0.0 {
                let u = self.next_f64();
                let mut cdf = f;
                let mut k = 0u64;
                while u > cdf && k < hi {
                    // P(k+1)/P(k) = (K - k)(n - k) / ((k + 1)(N - K - n + k + 1)).
                    let num = (k_small - k) as f64 * (k_large - k) as f64;
                    let den = (k + 1) as f64 * (population + k + 1 - k_small - k_large) as f64;
                    k += 1;
                    f *= num / den;
                    cdf += f;
                }
                return k;
            }
            // Underflow (not reachable for means under the cutoff with the
            // mirrored parameters; kept as a defensive fallback).
        }
        let var = mean * (n - successes as f64) / n * (n - draws as f64) / (n - 1.0).max(1.0);
        let z = self.standard_normal();
        let value = (mean + var.sqrt() * z + 0.5).floor().max(0.0) as u64;
        value.min(hi)
    }

    /// Draws from a multivariate hypergeometric distribution: `draws`
    /// processes are removed uniformly at random, without replacement, from a
    /// population partitioned into cells of sizes `counts`; `out[i]` receives
    /// the number removed from cell `i`.
    ///
    /// This is the inter-shard exchange sampler: by exchangeability, the set
    /// of emigrants leaving a shard (or the set of victims of a massive
    /// failure spanning shards) is a uniformly random subset of the eligible
    /// population, so its split across (shard × state) cells is exactly this
    /// distribution. Sampling is sequential-conditional — cell `i` given the
    /// earlier cells is univariate hypergeometric — so each marginal inherits
    /// the exact-below-[`NORMAL_APPROX_CUTOFF`] guarantee of
    /// [`Rng::hypergeometric`], including exact `P[cell = 0]` at small means.
    ///
    /// `draws` is clamped to the total population. Empty cells and an
    /// exhausted remainder consume no randomness, and the final non-empty
    /// cell is taken by subtraction: the univariate sampler's own early
    /// returns make those draws deterministic, which keeps the RNG stream
    /// identical to hand-rolled sequential walks over the same cells.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < counts.len()`.
    pub fn multivariate_hypergeometric_into(
        &mut self,
        counts: &[u64],
        draws: u64,
        out: &mut [u64],
    ) {
        assert!(
            out.len() >= counts.len(),
            "output slice shorter than cell counts"
        );
        out[..counts.len()].fill(0);
        let mut population: u64 = counts.iter().sum();
        let mut remaining = draws.min(population);
        for (cell, here) in out.iter_mut().zip(counts.iter().copied()) {
            if remaining == 0 {
                break;
            }
            let hit = if population == here {
                remaining
            } else {
                self.hypergeometric(population, here, remaining)
            };
            *cell = hit;
            population -= here;
            remaining -= hit;
        }
    }

    /// Allocating form of [`Rng::multivariate_hypergeometric_into`].
    pub fn multivariate_hypergeometric(&mut self, counts: &[u64], draws: u64) -> Vec<u64> {
        let mut out = vec![0u64; counts.len()];
        self.multivariate_hypergeometric_into(counts, draws, &mut out);
        out
    }

    /// Draws from `Exponential(mean)`: the waiting time to the next event of
    /// a Poisson process with rate `1 / mean` — the inter-event clock of the
    /// continuous-time (SSA) protocol runtimes. Non-positive means return
    /// `0.0` (a rate-∞ event fires immediately).
    ///
    /// Exactly one uniform is consumed per draw, via inversion of the
    /// survival function; the `1 − u` mirror keeps `ln` away from zero, so
    /// the result is always finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use netsim::Rng;
    ///
    /// let mut rng = Rng::seed_from(7);
    /// let wait = rng.exponential(360.0);
    /// assert!(wait.is_finite() && wait >= 0.0);
    /// ```
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Draws from `Poisson(mean)`: the number of events of a unit-rate
    /// process in a window of length `mean` — the per-channel leap count of
    /// the tau-leaping runtime. Non-positive means return `0`.
    ///
    /// Below [`NORMAL_APPROX_CUTOFF`] the draw walks the exact inverse CDF
    /// starting from `P(X = 0) = e^{−mean}`, so — exactly as for
    /// [`Rng::binomial`] — boundary outcomes keep their true probabilities:
    /// `P[X = 0]` matches the analytic value bit-for-bit, which is what
    /// keeps absorbing states reachable when a leap window carries a small
    /// expected count. Above the cutoff a continuity-corrected normal
    /// approximation is used, whose error is far below the stochastic noise
    /// of the experiments.
    ///
    /// # Examples
    ///
    /// ```
    /// use netsim::Rng;
    ///
    /// let mut rng = Rng::seed_from(7);
    /// let k = rng.poisson(1_000.0);
    /// assert!((850..1150).contains(&k));
    /// ```
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean < NORMAL_APPROX_CUTOFF {
            // Inversion by sequential search. The tail bound is defensive
            // only: below the cutoff the CDF reaches any u < 1 long before
            // the probe leaves the support's bulk (P[X > 1000 | mean < 30]
            // underflows f64).
            let mut f = (-mean).exp();
            let u = self.next_f64();
            let mut cdf = f;
            let mut k = 0u64;
            while u > cdf && k < 1_000 {
                k += 1;
                f *= mean / k as f64;
                cdf += f;
            }
            k
        } else {
            let z = self.standard_normal();
            (mean + mean.sqrt() * z + 0.5).floor().max(0.0) as u64
        }
    }
}

/// Function form of [`Rng::binomial`].
pub fn binomial(rng: &mut Rng, n: u64, p: f64) -> u64 {
    rng.binomial(n, p)
}

/// Function form of [`Rng::standard_normal`].
pub fn standard_normal(rng: &mut Rng) -> f64 {
    rng.standard_normal()
}

/// Function form of [`Rng::multinomial`].
pub fn multinomial(rng: &mut Rng, n: u64, weights: &[f64]) -> Vec<u64> {
    rng.multinomial(n, weights)
}

/// Function form of [`Rng::hypergeometric`].
pub fn hypergeometric(rng: &mut Rng, population: u64, successes: u64, draws: u64) -> u64 {
    rng.hypergeometric(population, successes, draws)
}

/// Function form of [`Rng::multivariate_hypergeometric`].
pub fn multivariate_hypergeometric(rng: &mut Rng, counts: &[u64], draws: u64) -> Vec<u64> {
    rng.multivariate_hypergeometric(counts, draws)
}

/// Function form of [`Rng::exponential`].
pub fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    rng.exponential(mean)
}

/// Function form of [`Rng::poisson`].
pub fn poisson(rng: &mut Rng, mean: f64) -> u64 {
    rng.poisson(mean)
}

/// Samples `k` distinct indices uniformly at random from `0..n` (Floyd's
/// algorithm). If `k >= n` every index is returned.
pub fn sample_without_replacement(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Floyd's algorithm keeps memory at O(k).
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.index(j + 1);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Draws from a geometric distribution: the number of independent
/// Bernoulli(`p`) failures before the first success. Returns `u64::MAX` when
/// `p <= 0`.
pub fn geometric(rng: &mut Rng, p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 0;
    }
    let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(0xD1CE)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        assert_eq!(binomial(&mut r, 100, -0.5), 0);
        assert_eq!(binomial(&mut r, 100, 1.5), 100);
    }

    #[test]
    fn binomial_is_deterministic_per_seed() {
        // Golden values pin the sampling algorithm: a change to the RNG
        // consumption pattern shows up here before it silently shifts every
        // seeded experiment.
        let mut r = Rng::seed_from(42);
        let golden: Vec<u64> = (0..6).map(|_| r.binomial(1_000, 0.01)).collect();
        let mut r2 = Rng::seed_from(42);
        let again: Vec<u64> = (0..6).map(|_| r2.binomial(1_000, 0.01)).collect();
        assert_eq!(golden, again, "same seed, same stream");
        // All three regimes are deterministic.
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for &(n, p) in &[(40u64, 0.3), (10_000, 0.001), (1_000_000, 0.4)] {
            assert_eq!(a.binomial(n, p), b.binomial(n, p));
        }
    }

    #[test]
    fn binomial_moments_small_n() {
        let mut r = rng();
        let (n, p, draws) = (40u64, 0.2, 20_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / draws as f64;
        assert!((mean - n as f64 * p).abs() < 0.2, "mean {mean}");
        assert!((var - n as f64 * p * (1.0 - p)).abs() < 0.5, "var {var}");
    }

    #[test]
    fn binomial_moments_inverse_cdf_regime() {
        let mut r = rng();
        // n large, mean < 30 → inverse CDF path.
        let (n, p, draws) = (10_000u64, 0.001, 20_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|&x| x <= n));
    }

    #[test]
    fn binomial_moments_normal_approx_regime() {
        let mut r = rng();
        let (n, p, draws) = (100_000u64, 0.3, 5_000);
        let samples: Vec<u64> = (0..draws).map(|_| binomial(&mut r, n, p)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
        let expected = n as f64 * p;
        assert!((mean - expected).abs() < expected * 0.005, "mean {mean}");
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / draws as f64;
        assert!((var.sqrt() - sd).abs() < sd * 0.1);
    }

    #[test]
    fn binomial_large_p_symmetry() {
        let mut r = rng();
        let (n, draws) = (1000u64, 10_000);
        let mean: f64 = (0..draws)
            .map(|_| binomial(&mut r, n, 0.97) as f64)
            .sum::<f64>()
            / draws as f64;
        assert!((mean - 970.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn normal_variate_moments() {
        let mut r = rng();
        let draws = 100_000;
        let samples: Vec<f64> = (0..draws).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn multinomial_conserves_total_and_proportions() {
        let mut r = rng();
        let weights = [0.5, 0.3, 0.2];
        let mut totals = [0u64; 3];
        let draws = 2_000;
        let n = 1_000;
        for _ in 0..draws {
            let counts = multinomial(&mut r, n, &weights);
            assert_eq!(counts.iter().sum::<u64>(), n);
            for (t, c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        let total = (draws * n) as f64;
        for (t, w) in totals.iter().zip(&weights) {
            assert!((*t as f64 / total - w).abs() < 0.01);
        }
    }

    #[test]
    fn multinomial_into_reuses_the_buffer() {
        let mut r = rng();
        let mut out = vec![99u64; 3];
        r.multinomial_into(500, &[0.2, 0.3, 0.5], &mut out);
        assert_eq!(out.iter().sum::<u64>(), 500);
        // Stale contents are overwritten even for zero trials.
        r.multinomial_into(0, &[0.2, 0.3, 0.5], &mut out);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "output buffer must match")]
    fn multinomial_into_rejects_mismatched_buffer() {
        let mut out = vec![0u64; 2];
        rng().multinomial_into(10, &[0.5, 0.5, 0.0], &mut out);
    }

    #[test]
    fn multinomial_degenerate_weights() {
        let mut r = rng();
        let counts = multinomial(&mut r, 100, &[0.0, 0.0, 1.0]);
        assert_eq!(counts, vec![0, 0, 100]);
        let counts = multinomial(&mut r, 100, &[0.0, 0.0]);
        assert_eq!(counts.iter().sum::<u64>(), 0);
        let counts = multinomial(&mut r, 0, &[0.2, 0.8]);
        assert_eq!(counts, vec![0, 0]);
        // Negative weights are treated as zero.
        let counts = multinomial(&mut r, 50, &[-1.0, 1.0]);
        assert_eq!(counts, vec![0, 50]);
    }

    #[test]
    fn binomial_small_mean_preserves_extinction_probability() {
        // Regression for the absorbing-state audit: with a small expected
        // count the sampler must use the exact inverse-CDF walk, so P[X = 0]
        // matches the analytic (1 − p)^n. The clamped normal would put
        // ~2.2 % of its mass at zero here instead of the true ~0.67 %.
        let mut r = rng();
        let (n, p) = (10_000u64, 0.0005f64);
        let p_zero = (1.0 - p).powi(n as i32); // ≈ e^−5 ≈ 0.0067
        let draws = 30_000;
        let zeros = (0..draws).filter(|_| r.binomial(n, p) == 0).count();
        let expected = p_zero * draws as f64; // ≈ 202
        let sd = (draws as f64 * p_zero * (1.0 - p_zero)).sqrt(); // ≈ 14
        assert!(
            (zeros as f64 - expected).abs() < 5.0 * sd,
            "zeros {zeros}, expected {expected:.0} ± {sd:.0}"
        );
        // The mirrored tail is exact too: P[X = n] for p near 1.
        let full = (0..draws).filter(|_| r.binomial(n, 1.0 - p) == n).count();
        assert!(
            (full as f64 - expected).abs() < 5.0 * sd,
            "full {full}, expected {expected:.0} ± {sd:.0}"
        );
    }

    #[test]
    fn hypergeometric_small_mean_with_large_draws_is_exact() {
        // draws + successes > population used to skip the exact walk and
        // take the clamped normal even at tiny means; the complement mirrors
        // make it exact. Here a 90 %-of-population draw hits 10 marked items:
        // support is [0, 10], mean 9, and P[X = 10] = Π (90−i)/(100−i) ≈ 0.33.
        let mut r = rng();
        let (pop, succ, draws) = (100u64, 10u64, 90u64);
        let reps = 40_000;
        let samples: Vec<u64> = (0..reps)
            .map(|_| r.hypergeometric(pop, succ, draws))
            .collect();
        assert!(samples.iter().all(|&x| x <= 10));
        let mean = samples.iter().sum::<u64>() as f64 / reps as f64;
        assert!((mean - 9.0).abs() < 0.05, "mean {mean}");
        let p_all: f64 = (0..succ)
            .map(|i| (draws - i) as f64 / (pop - i) as f64)
            .product();
        let all = samples.iter().filter(|&&x| x == succ).count() as f64 / reps as f64;
        let sd = (p_all * (1.0 - p_all) / reps as f64).sqrt();
        assert!(
            (all - p_all).abs() < 5.0 * sd + 0.005,
            "P[X = 10] measured {all:.4}, exact {p_all:.4}"
        );
    }

    #[test]
    fn hypergeometric_edges_and_bounds() {
        let mut r = rng();
        assert_eq!(r.hypergeometric(100, 0, 50), 0);
        assert_eq!(r.hypergeometric(100, 50, 0), 0);
        assert_eq!(r.hypergeometric(100, 30, 100), 30);
        assert_eq!(r.hypergeometric(100, 100, 40), 40);
        // Parameters above the population are clamped.
        assert_eq!(r.hypergeometric(10, 20, 10), 10);
        for _ in 0..1_000 {
            let k = r.hypergeometric(50, 30, 40);
            // Support: max(0, n + K - N) ≤ k ≤ min(n, K).
            assert!((20..=30).contains(&k), "k = {k}");
        }
    }

    #[test]
    fn hypergeometric_moments_exact_regime() {
        let mut r = rng();
        // mean = 1000 * 100 / 100_000 = 1 → exact inverse-CDF walk.
        let (pop, succ, draws, reps) = (100_000u64, 100u64, 1_000u64, 20_000);
        let samples: Vec<u64> = (0..reps)
            .map(|_| r.hypergeometric(pop, succ, draws))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / reps as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn hypergeometric_moments_normal_regime() {
        let mut r = rng();
        // Crash half of 10_000 with 4_000 marked: mean 2_000.
        let (pop, succ, draws, reps) = (10_000u64, 4_000u64, 5_000u64, 5_000);
        let samples: Vec<u64> = (0..reps)
            .map(|_| r.hypergeometric(pop, succ, draws))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / reps as f64;
        assert!((mean - 2_000.0).abs() < 10.0, "mean {mean}");
        let n = pop as f64;
        let expected_var = 2_000.0 * (n - succ as f64) / n * (n - draws as f64) / (n - 1.0);
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / reps as f64;
        assert!(
            (var - expected_var).abs() < expected_var * 0.1,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn multivariate_hypergeometric_moments() {
        // Remove 1_000 of 10_000 split 5_000/3_000/2_000. Each marginal is
        // Hypergeometric(10_000, c_i, 1_000): mean 1_000·c_i/10_000, variance
        // n·(c/N)·(1−c/N)·(N−n)/(N−1).
        let mut r = rng();
        let counts = [5_000u64, 3_000, 2_000];
        let (total, draws, reps) = (10_000f64, 1_000u64, 20_000);
        let mut sums = [0f64; 3];
        let mut sq = [0f64; 3];
        for _ in 0..reps {
            let s = r.multivariate_hypergeometric(&counts, draws);
            assert_eq!(s.iter().sum::<u64>(), draws, "draw total conserved");
            for (i, &x) in s.iter().enumerate() {
                assert!(x <= counts[i], "cell overdrawn");
                sums[i] += x as f64;
                sq[i] += (x as f64).powi(2);
            }
        }
        for i in 0..3 {
            let p = counts[i] as f64 / total;
            let expected_mean = draws as f64 * p;
            let expected_var =
                draws as f64 * p * (1.0 - p) * (total - draws as f64) / (total - 1.0);
            let mean = sums[i] / reps as f64;
            let var = sq[i] / reps as f64 - mean * mean;
            // 5σ band on the sample mean.
            let se = (expected_var / reps as f64).sqrt();
            assert!(
                (mean - expected_mean).abs() < 5.0 * se,
                "cell {i}: mean {mean} vs {expected_mean} ± {se}"
            );
            assert!(
                (var - expected_var).abs() < expected_var * 0.1,
                "cell {i}: var {var} vs {expected_var}"
            );
        }
    }

    #[test]
    fn multivariate_hypergeometric_boundaries() {
        let mut r = rng();
        // draws = 0 removes nothing.
        assert_eq!(r.multivariate_hypergeometric(&[10, 20, 30], 0), [0, 0, 0]);
        // draws = total (and clamping above it) empties every cell.
        assert_eq!(
            r.multivariate_hypergeometric(&[10, 20, 30], 60),
            [10, 20, 30]
        );
        assert_eq!(
            r.multivariate_hypergeometric(&[10, 20, 30], 1_000),
            [10, 20, 30]
        );
        // Empty cells never receive draws; single non-empty cell absorbs all.
        assert_eq!(r.multivariate_hypergeometric(&[0, 50, 0], 7), [0, 7, 0]);
        // No cells at all.
        assert_eq!(r.multivariate_hypergeometric(&[], 5), Vec::<u64>::new());
        // Support check under repetition.
        for _ in 0..1_000 {
            let s = r.multivariate_hypergeometric(&[3, 0, 5, 2], 4);
            assert_eq!(s.iter().sum::<u64>(), 4);
            assert_eq!(s[1], 0);
            assert!(s[0] <= 3 && s[2] <= 5 && s[3] <= 2);
        }
    }

    #[test]
    fn multivariate_hypergeometric_small_cell_preserves_miss_probability() {
        // PR 4's exactness contract extended to the joint sampler: a tiny
        // cell (10 of 100_000) must keep its exact escape probability under a
        // large draw (30_000). P[cell untouched] = Π_{i<10} (70_000−i)/(100_000−i)
        // ≈ 0.7^10 ≈ 0.0282; a clamped normal marginal would distort it.
        let mut r = rng();
        let counts = [10u64, 99_990];
        let draws = 30_000u64;
        let p_zero: f64 = (0..10)
            .map(|i| (70_000 - i) as f64 / (100_000 - i) as f64)
            .product();
        let reps = 30_000;
        let zeros = (0..reps)
            .filter(|_| r.multivariate_hypergeometric(&counts, draws)[0] == 0)
            .count();
        let expected = p_zero * reps as f64;
        let sd = (reps as f64 * p_zero * (1.0 - p_zero)).sqrt();
        assert!(
            (zeros as f64 - expected).abs() < 5.0 * sd,
            "zeros {zeros}, expected {expected:.0} ± {sd:.0}"
        );
    }

    #[test]
    fn multivariate_hypergeometric_golden_and_into_form() {
        // Pinned draws: the sampler's RNG consumption is part of the seeded
        // reproducibility contract (the sharded runtime's exchange and the
        // batched runtime's massive failures both ride on it).
        let mut r = Rng::seed_from(42);
        let a = r.multivariate_hypergeometric(&[100, 200, 300], 60);
        let b = r.multivariate_hypergeometric(&[100, 200, 300], 60);
        let mut r2 = Rng::seed_from(42);
        let mut out = [0u64; 3];
        r2.multivariate_hypergeometric_into(&[100, 200, 300], 60, &mut out);
        assert_eq!(a, out, "into-form matches allocating form");
        let mut out2 = [0u64; 3];
        r2.multivariate_hypergeometric_into(&[100, 200, 300], 60, &mut out2);
        assert_eq!(b, out2, "stream position advances identically");
        assert_ne!(a, b, "consecutive draws differ (seed 42)");
        // The into-form clears stale contents in the cells it owns.
        let mut dirty = [9u64, 9, 9];
        Rng::seed_from(7).multivariate_hypergeometric_into(&[0, 0, 0], 5, &mut dirty);
        assert_eq!(dirty, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "output slice shorter")]
    fn multivariate_hypergeometric_into_rejects_short_output() {
        let mut out = [0u64; 2];
        rng().multivariate_hypergeometric_into(&[1, 2, 3], 2, &mut out);
    }

    #[test]
    fn sampling_without_replacement_is_distinct_and_uniform() {
        let mut r = rng();
        for _ in 0..500 {
            let s = sample_without_replacement(&mut r, 20, 5);
            assert_eq!(s.len(), 5);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
        // k >= n returns everything.
        assert_eq!(sample_without_replacement(&mut r, 4, 10), vec![0, 1, 2, 3]);
        // Coverage: each index selected roughly equally often.
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            for i in sample_without_replacement(&mut r, 10, 3) {
                hits[i] += 1;
            }
        }
        for &h in &hits {
            assert!((h as f64 - 3_000.0).abs() < 300.0, "hits {h}");
        }
    }

    #[test]
    fn exponential_edges_and_moments() {
        let mut r = rng();
        assert_eq!(exponential(&mut r, 0.0), 0.0);
        assert_eq!(exponential(&mut r, -3.0), 0.0);
        let mean = 360.0;
        let draws = 100_000;
        let samples: Vec<f64> = (0..draws).map(|_| r.exponential(mean)).collect();
        assert!(samples.iter().all(|&x| x.is_finite() && x >= 0.0));
        let m = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / draws as f64;
        // E[X] = mean, Var[X] = mean²; 5σ bands on the sample mean.
        let se = mean / (draws as f64).sqrt();
        assert!((m - mean).abs() < 5.0 * se, "mean {m}");
        assert!((var - mean * mean).abs() < mean * mean * 0.1, "var {var}");
    }

    #[test]
    fn exponential_is_deterministic_per_seed() {
        // Golden values pin the one-uniform-per-draw consumption pattern.
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        let xs: Vec<f64> = (0..6).map(|_| a.exponential(10.0)).collect();
        let ys: Vec<f64> = (0..6).map(|_| b.exponential(10.0)).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert!(xs.windows(2).any(|w| w[0] != w[1]), "draws vary");
    }

    #[test]
    fn poisson_edge_cases() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -2.0), 0);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        // Both regimes are deterministic.
        for &mean in &[0.5, 4.0, 25.0, 100.0, 10_000.0] {
            assert_eq!(a.poisson(mean), b.poisson(mean));
        }
    }

    #[test]
    fn poisson_moments_inversion_regime() {
        let mut r = rng();
        let (mean, draws) = (8.0, 50_000);
        let samples: Vec<u64> = (0..draws).map(|_| r.poisson(mean)).collect();
        let m = samples.iter().sum::<u64>() as f64 / draws as f64;
        let var = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / draws as f64;
        // E[X] = Var[X] = mean; 5σ bands on the sample mean.
        let se = (mean / draws as f64).sqrt();
        assert!((m - mean).abs() < 5.0 * se, "mean {m}");
        assert!((var - mean).abs() < mean * 0.1, "var {var}");
    }

    #[test]
    fn poisson_moments_normal_regime() {
        let mut r = rng();
        let (mean, draws) = (5_000.0, 20_000);
        let samples: Vec<u64> = (0..draws).map(|_| r.poisson(mean)).collect();
        let m = samples.iter().sum::<u64>() as f64 / draws as f64;
        let se = (mean / draws as f64).sqrt();
        assert!((m - mean).abs() < 5.0 * se, "mean {m}");
        let var = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / draws as f64;
        assert!((var - mean).abs() < mean * 0.1, "var {var}");
    }

    #[test]
    fn poisson_small_mean_preserves_zero_probability() {
        // The exactness contract extended to the leap sampler: below the
        // cutoff P[X = 0] must match the analytic e^{−mean} — a clamped
        // normal would visibly distort the probability that a leap window
        // leaves a small population untouched.
        let mut r = rng();
        let mean = 5.0_f64;
        let p_zero = (-mean).exp(); // ≈ 0.0067
        let draws = 30_000;
        let zeros = (0..draws).filter(|_| r.poisson(mean) == 0).count();
        let expected = p_zero * draws as f64;
        let sd = (draws as f64 * p_zero * (1.0 - p_zero)).sqrt();
        assert!(
            (zeros as f64 - expected).abs() < 5.0 * sd,
            "zeros {zeros}, expected {expected:.0} ± {sd:.0}"
        );
    }

    #[test]
    fn geometric_moments_and_edges() {
        let mut r = rng();
        assert_eq!(geometric(&mut r, 1.0), 0);
        assert_eq!(geometric(&mut r, 0.0), u64::MAX);
        let p = 0.25;
        let draws = 50_000;
        let mean: f64 = (0..draws).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / draws as f64;
        // E[failures before success] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
