//! Deterministic, seedable pseudo-random number generation.
//!
//! The simulator uses a self-contained xoshiro256** generator (seeded through
//! SplitMix64) rather than an external crate so that experiment runs are
//! bit-reproducible regardless of dependency versions. The paper's C
//! implementation used a Mersenne Twister; any high-quality uniform generator
//! produces statistically indistinguishable protocol behaviour.

/// A xoshiro256** pseudo-random number generator.
///
/// Not cryptographically secure; intended purely for simulation.
///
/// # Examples
///
/// ```
/// use netsim::Rng;
///
/// let mut rng = Rng::seed_from(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Same seed → same stream.
/// let mut rng2 = Rng::seed_from(42);
/// assert_eq!(rng2.next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [next_sm(), next_sm(), next_sm(), next_sm()];
        // Avoid the all-zero state (cannot occur from SplitMix64, but be safe).
        if state.iter().all(|&s| s == 0) {
            state[0] = 1;
        }
        Rng { state }
    }

    /// The next uniformly distributed 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free enough for simulation purposes:
        // widening multiply keeps bias below 2^-64 per draw.
        let x = self.next_u64();
        (((x as u128) * (bound as u128)) >> 64) as usize
    }

    /// A uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    #[inline]
    pub fn range(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "empty range");
        low + self.index(high - low)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// A uniform `f64` in `[low, high)`.
    #[inline]
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Chooses one element of a slice uniformly at random, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Derives an independent generator for a sub-component (e.g. one per
    /// process), mixing the parent stream with the given stream id.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng::seed_from(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from(2);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn index_is_unbiased_enough() {
        let mut rng = Rng::seed_from(3);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.index(10)] += 1;
        }
        for &c in &counts {
            let expected = draws as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Rng::seed_from(0).index(0);
    }

    #[test]
    fn range_and_uniform_bounds() {
        let mut rng = Rng::seed_from(4);
        for _ in 0..1000 {
            let v = rng.range(5, 10);
            assert!((5..10).contains(&v));
            let u = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes_and_statistics() {
        let mut rng = Rng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements almost surely move"
        );
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = Rng::seed_from(7);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let v = [1, 2, 3];
        assert!(v.contains(rng.choose(&v).unwrap()));
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = Rng::seed_from(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn all_zero_seed_is_fixed_up() {
        // seed 0 still produces a non-degenerate stream.
        let mut rng = Rng::seed_from(0);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
