//! Worker-process supervision for the socket-backed transport.
//!
//! [`UdsTransport`](crate::transport::UdsTransport) turns each population
//! segment into a real operating-system process. This module owns the
//! process-management half of that story:
//!
//! * **Spawning.** A [`WorkerSupervisor`] spawns one worker per segment via
//!   a [`WorkerLauncher`] (re-exec the current executable, re-enter a named
//!   test in the current test binary — the classic fork-through-libtest
//!   trick — or an explicit command line). Configuration travels through
//!   `DPDE_UDS_*` environment variables; [`maybe_run_worker`] at the top of
//!   a `main` (or inside a dedicated `#[test]`) turns the child into a
//!   worker and never returns.
//! * **Datagram fabric.** Workers and coordinator exchange fixed-size
//!   binary frames over Unix datagram sockets in a per-run temp directory:
//!   a data socket for echo traffic and a control socket for handshakes and
//!   heartbeats, so a flood of echoes can never starve a health check.
//! * **Real death, real recovery.** [`WorkerSupervisor::kill`] SIGKILLs the
//!   child — actual process death commanded by the
//!   [`Adversary`](crate::adversary::Adversary) hooks, not a simulated
//!   crash — and [`WorkerSupervisor::respawn`] restarts it under a bumped
//!   generation, so datagrams from a previous incarnation are discarded
//!   exactly like stale chain generations on the in-proc path.
//! * **Hygiene.** Workers exit on a shutdown frame or after an idle
//!   timeout (no orphans if the coordinator dies); dropping the supervisor
//!   kills every child, reaps it, and removes the socket directory.

use crate::error::io_error;
use crate::Result;
use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Frame kinds. An echo request is the coordinator pushing one virtual
/// message through the kernel to the worker owning the destination segment;
/// the worker answers with an echo reply carrying the same sequence number.
pub(crate) const KIND_ECHO_REQ: u8 = 1;
pub(crate) const KIND_ECHO_REPLY: u8 = 2;
pub(crate) const KIND_PING: u8 = 3;
pub(crate) const KIND_PONG: u8 = 4;
pub(crate) const KIND_HELLO: u8 = 5;
pub(crate) const KIND_SHUTDOWN: u8 = 6;

/// Wire size of one frame.
pub(crate) const FRAME_LEN: usize = 32;

/// One fixed-size datagram: kind, worker generation, broker sequence
/// number, endpoints, and the opaque payload. Encoded little-endian by
/// hand — no serde, no allocation, trivially fuzzable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Frame {
    pub kind: u8,
    pub gen: u32,
    pub seq: u64,
    pub src: u32,
    pub dst: u32,
    pub payload: u64,
}

impl Frame {
    pub(crate) fn encode(&self) -> [u8; FRAME_LEN] {
        let mut buf = [0u8; FRAME_LEN];
        buf[0] = self.kind;
        buf[4..8].copy_from_slice(&self.gen.to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..20].copy_from_slice(&self.src.to_le_bytes());
        buf[20..24].copy_from_slice(&self.dst.to_le_bytes());
        buf[24..32].copy_from_slice(&self.payload.to_le_bytes());
        buf
    }

    pub(crate) fn decode(buf: &[u8]) -> Option<Frame> {
        if buf.len() != FRAME_LEN {
            return None;
        }
        let word = |r: std::ops::Range<usize>| -> u64 {
            u64::from_le_bytes(buf[r].try_into().expect("frame slice"))
        };
        let half = |r: std::ops::Range<usize>| -> u32 {
            u32::from_le_bytes(buf[r].try_into().expect("frame slice"))
        };
        Some(Frame {
            kind: buf[0],
            gen: half(4..8),
            seq: word(8..16),
            src: half(16..20),
            dst: half(20..24),
            payload: word(24..32),
        })
    }
}

/// How worker processes are started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerLauncher {
    /// Re-exec the current executable. The host binary must call
    /// [`maybe_run_worker`] at the very top of `main`.
    CurrentExe,
    /// Re-exec the current *test* binary, filtered down to the named test
    /// (full module path) with `--exact`. The named test must consist of a
    /// single call to [`maybe_run_worker`], which makes it a no-op when run
    /// normally and a worker loop when spawned by a supervisor.
    CurrentExeTest(String),
    /// An explicit command line (`argv[0]` plus arguments). The target must
    /// call [`maybe_run_worker`] on startup.
    Command(Vec<String>),
}

impl WorkerLauncher {
    fn command(&self) -> Result<Command> {
        let exe = || std::env::current_exe().map_err(|e| io_error("resolve current executable", e));
        match self {
            WorkerLauncher::CurrentExe => Ok(Command::new(exe()?)),
            WorkerLauncher::CurrentExeTest(test) => {
                let mut cmd = Command::new(exe()?);
                cmd.args([
                    test,
                    "--exact",
                    "--nocapture",
                    "--test-threads=1",
                    "--quiet",
                ]);
                Ok(cmd)
            }
            WorkerLauncher::Command(argv) => {
                let program = argv.first().ok_or(crate::SimError::InvalidConfig {
                    name: "launcher",
                    reason: "command launcher needs at least argv[0]".into(),
                })?;
                let mut cmd = Command::new(program);
                cmd.args(&argv[1..]);
                Ok(cmd)
            }
        }
    }
}

/// Socket-backend tuning: how workers are launched and how long the echo
/// fabric waits for the kernel round-trip before declaring a worker wedged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketConfig {
    launcher: WorkerLauncher,
    echo_wait_ms: u64,
}

impl SocketConfig {
    /// A socket backend using `launcher`, with the default 2 s echo budget.
    pub fn new(launcher: WorkerLauncher) -> Self {
        SocketConfig {
            launcher,
            echo_wait_ms: 2_000,
        }
    }

    /// Sets the wall-clock budget (milliseconds) for one echo round-trip,
    /// including bounded physical resends. A healthy local worker answers
    /// in microseconds; this budget is only ever spent on dead or wedged
    /// workers, whose segments are then parked.
    pub fn with_echo_wait_ms(mut self, ms: u64) -> Self {
        self.echo_wait_ms = ms.max(1);
        self
    }

    /// The worker launcher.
    pub fn launcher(&self) -> &WorkerLauncher {
        &self.launcher
    }

    /// The echo round-trip budget in milliseconds.
    pub fn echo_wait_ms(&self) -> u64 {
        self.echo_wait_ms
    }
}

/// Distinguishes concurrent supervisors inside one process (unit tests).
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Environment variables a worker reads on startup.
const ENV_SOCKET: &str = "DPDE_UDS_SOCKET";
const ENV_WORKER: &str = "DPDE_UDS_WORKER";
const ENV_GEN: &str = "DPDE_UDS_GEN";
const ENV_COORD: &str = "DPDE_UDS_COORD";
const ENV_CONTROL: &str = "DPDE_UDS_CONTROL";

/// A worker exits after this many seconds without any datagram, so a
/// crashed coordinator cannot leak orphan processes.
const WORKER_IDLE_EXIT: Duration = Duration::from_secs(30);

/// How long `spawn`/`respawn` waits for a worker's HELLO handshake.
const HELLO_WAIT: Duration = Duration::from_secs(10);

struct WorkerSlot {
    child: Option<Child>,
    path: PathBuf,
    alive: bool,
    restarts: u32,
}

/// Spawns, health-checks, kills and restarts the worker processes backing a
/// [`UdsTransport`](crate::transport::UdsTransport) — one worker per
/// population segment.
#[derive(Debug)]
pub struct WorkerSupervisor {
    dir: PathBuf,
    data: UnixDatagram,
    control: UnixDatagram,
    launcher: WorkerLauncher,
    generation: u32,
    workers: Vec<WorkerSlot>,
    next_nonce: u64,
}

impl std::fmt::Debug for WorkerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSlot")
            .field("path", &self.path)
            .field("alive", &self.alive)
            .field("restarts", &self.restarts)
            .finish()
    }
}

impl WorkerSupervisor {
    /// Creates the socket directory, binds the coordinator sockets, and
    /// spawns one worker per segment, waiting for each HELLO handshake.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`](crate::SimError::Io) if sockets cannot be
    /// bound, a worker cannot be spawned, or a worker fails to check in.
    pub fn spawn(launcher: WorkerLauncher, segments: usize) -> Result<Self> {
        let dir = socket_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_error(&format!("create socket dir {}", dir.display()), e))?;
        let data = UnixDatagram::bind(dir.join("coord-data.sock"))
            .map_err(|e| io_error("bind coordinator data socket", e))?;
        data.set_nonblocking(true)
            .map_err(|e| io_error("set data socket non-blocking", e))?;
        let control = UnixDatagram::bind(dir.join("coord-ctl.sock"))
            .map_err(|e| io_error("bind coordinator control socket", e))?;
        control
            .set_read_timeout(Some(Duration::from_millis(200)))
            .map_err(|e| io_error("set control socket timeout", e))?;
        let mut sup = WorkerSupervisor {
            dir,
            data,
            control,
            launcher,
            generation: 1,
            workers: Vec::new(),
            next_nonce: 0,
        };
        for k in 0..segments {
            sup.workers.push(WorkerSlot {
                child: None,
                path: PathBuf::new(),
                alive: false,
                restarts: 0,
            });
            sup.spawn_worker(k)?;
        }
        Ok(sup)
    }

    fn spawn_worker(&mut self, k: usize) -> Result<()> {
        let path = self.dir.join(format!("w{k}-g{}.sock", self.generation));
        let _ = std::fs::remove_file(&path);
        let mut cmd = self.launcher.command()?;
        cmd.env(ENV_SOCKET, &path)
            .env(ENV_WORKER, k.to_string())
            .env(ENV_GEN, self.generation.to_string())
            .env(ENV_COORD, self.dir.join("coord-data.sock"))
            .env(ENV_CONTROL, self.dir.join("coord-ctl.sock"))
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd
            .spawn()
            .map_err(|e| io_error(&format!("spawn worker {k}"), e))?;
        let slot = &mut self.workers[k];
        slot.child = Some(child);
        slot.path = path;
        slot.alive = true;
        self.await_hello(k)
    }

    /// Blocks (bounded) until worker `k` of the current generation says
    /// HELLO on the control socket; other frames are drained and ignored.
    fn await_hello(&mut self, k: usize) -> Result<()> {
        let deadline = Instant::now() + HELLO_WAIT;
        let mut buf = [0u8; FRAME_LEN];
        while Instant::now() < deadline {
            match self.control.recv(&mut buf) {
                Ok(len) => {
                    if let Some(f) = Frame::decode(&buf[..len]) {
                        if f.kind == KIND_HELLO && f.src == k as u32 && f.gen == self.generation {
                            return Ok(());
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(io_error("recv on control socket", e)),
            }
        }
        Err(io_error(
            &format!("worker {k} handshake"),
            std::io::Error::new(std::io::ErrorKind::TimedOut, "no HELLO within budget"),
        ))
    }

    /// Number of workers (== population segments).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The current worker generation (bumped on every respawn).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// `true` if worker `k` has not been killed since its last (re)spawn.
    pub fn alive(&self, k: usize) -> bool {
        self.workers[k].alive
    }

    /// How many times worker `k` was respawned.
    pub fn restarts(&self, k: usize) -> u32 {
        self.workers[k].restarts
    }

    /// Sends one frame to worker `k`'s socket. The data socket is
    /// non-blocking and Linux caps the datagram queue of a Unix socket
    /// (`net.unix.max_dgram_qlen`, often just 10), so a healthy worker that
    /// is merely behind on draining produces `WouldBlock` — retry briefly
    /// instead of misdiagnosing it as death. Hard errors (socket file gone
    /// after a kill) surface immediately.
    pub(crate) fn send_frame(&self, k: usize, frame: &Frame) -> std::io::Result<()> {
        let buf = frame.encode();
        let deadline = Instant::now() + Duration::from_millis(500);
        loop {
            match self.data.send_to(&buf, &self.workers[k].path) {
                Ok(_) => return Ok(()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Single-shot non-blocking send to worker `k` (callers that can drain
    /// echoes between attempts run their own retry loop around this).
    pub(crate) fn try_send_frame(&self, k: usize, frame: &Frame) -> std::io::Result<()> {
        self.data
            .send_to(&frame.encode(), &self.workers[k].path)
            .map(|_| ())
    }

    /// Non-blocking: the next echo reply waiting on the data socket, if any.
    pub(crate) fn try_recv_echo(&self) -> Option<Frame> {
        let mut buf = [0u8; FRAME_LEN];
        loop {
            match self.data.recv(&mut buf) {
                Ok(len) => match Frame::decode(&buf[..len]) {
                    Some(f) if f.kind == KIND_ECHO_REPLY => return Some(f),
                    _ => continue,
                },
                Err(_) => return None,
            }
        }
    }

    /// Health-checks worker `k`: a PING on the control socket answered by a
    /// matching PONG within the timeout. Returns `false` for dead, wedged,
    /// or unreachable workers — never errors.
    pub fn heartbeat(&mut self, k: usize) -> bool {
        if !self.workers[k].alive {
            return false;
        }
        self.next_nonce += 1;
        let ping = Frame {
            kind: KIND_PING,
            gen: self.generation,
            seq: self.next_nonce,
            src: k as u32,
            dst: 0,
            payload: 0,
        };
        if self.send_frame_control(k, &ping).is_err() {
            return false;
        }
        let deadline = Instant::now() + Duration::from_millis(1_000);
        let mut buf = [0u8; FRAME_LEN];
        while Instant::now() < deadline {
            match self.control.recv(&mut buf) {
                Ok(len) => {
                    if let Some(f) = Frame::decode(&buf[..len]) {
                        if f.kind == KIND_PONG && f.seq == self.next_nonce {
                            return true;
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return false,
            }
        }
        false
    }

    fn send_frame_control(&self, k: usize, frame: &Frame) -> std::io::Result<()> {
        // Pings go out on the data socket too (the worker has one socket);
        // the *reply* comes back on the control socket, which is what keeps
        // it separate from the echo stream.
        self.send_frame(k, frame)
    }

    /// SIGKILLs worker `k` and reaps it. Idempotent.
    pub fn kill(&mut self, k: usize) {
        let slot = &mut self.workers[k];
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
        slot.alive = false;
        let _ = std::fs::remove_file(&slot.path);
    }

    /// Respawns worker `k` under a bumped generation; frames from the old
    /// incarnation (stale socket, stale echoes) can no longer match.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`](crate::SimError::Io) if the spawn or the
    /// HELLO handshake fails.
    pub fn respawn(&mut self, k: usize) -> Result<()> {
        self.kill(k);
        self.generation += 1;
        self.spawn_worker(k)?;
        self.workers[k].restarts += 1;
        Ok(())
    }
}

impl Drop for WorkerSupervisor {
    fn drop(&mut self) {
        for k in 0..self.workers.len() {
            let shutdown = Frame {
                kind: KIND_SHUTDOWN,
                gen: self.generation,
                seq: 0,
                src: k as u32,
                dst: 0,
                payload: 0,
            };
            let _ = self.send_frame(k, &shutdown);
        }
        for slot in &mut self.workers {
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Picks a per-run socket directory: short (UDS paths are limited to ~100
/// bytes), unique per process and per supervisor.
fn socket_dir() -> PathBuf {
    let base = std::env::var_os("DPDE_UDS_TMPDIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    base.join(format!(
        "dpde-uds-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Worker entry point. If the `DPDE_UDS_*` environment variables are set,
/// the process becomes a transport worker: it binds its datagram socket,
/// says HELLO on the control socket, then echoes every request back to the
/// coordinator until told to shut down (or until it has been idle long
/// enough to assume the coordinator died) — and **exits the process**.
/// Without the variables it returns immediately, so it is safe (and
/// required) to call unconditionally at the top of any binary or test used
/// as a [`WorkerLauncher`] target.
pub fn maybe_run_worker() {
    let (Some(socket), Some(worker)) = (std::env::var_os(ENV_SOCKET), std::env::var_os(ENV_WORKER))
    else {
        return;
    };
    let code = match run_worker(Path::new(&socket), &worker.to_string_lossy()) {
        Ok(()) => 0,
        Err(_) => 1,
    };
    std::process::exit(code);
}

fn run_worker(socket: &Path, worker: &str) -> std::io::Result<()> {
    let parse = |v: std::ffi::OsString| v.to_string_lossy().parse::<u64>().unwrap_or(0);
    let gen = std::env::var_os(ENV_GEN).map(parse).unwrap_or(0) as u32;
    let me: u32 = worker.parse().unwrap_or(0);
    let coord = std::env::var_os(ENV_COORD)
        .map(PathBuf::from)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "DPDE_UDS_COORD unset"))?;
    let control = std::env::var_os(ENV_CONTROL)
        .map(PathBuf::from)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "DPDE_UDS_CONTROL unset")
        })?;
    let _ = std::fs::remove_file(socket);
    let sock = UnixDatagram::bind(socket)?;
    sock.set_read_timeout(Some(Duration::from_millis(500)))?;
    let hello = Frame {
        kind: KIND_HELLO,
        gen,
        seq: 0,
        src: me,
        dst: 0,
        payload: 0,
    };
    sock.send_to(&hello.encode(), &control)?;
    let mut buf = [0u8; FRAME_LEN];
    let mut idle_since = Instant::now();
    loop {
        match sock.recv(&mut buf) {
            Ok(len) => {
                idle_since = Instant::now();
                let Some(frame) = Frame::decode(&buf[..len]) else {
                    continue;
                };
                match frame.kind {
                    KIND_ECHO_REQ => {
                        let reply = Frame {
                            kind: KIND_ECHO_REPLY,
                            ..frame
                        };
                        let _ = sock.send_to(&reply.encode(), &coord);
                    }
                    KIND_PING => {
                        let pong = Frame {
                            kind: KIND_PONG,
                            ..frame
                        };
                        let _ = sock.send_to(&pong.encode(), &control);
                    }
                    KIND_SHUTDOWN => return Ok(()),
                    _ => {}
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if idle_since.elapsed() > WORKER_IDLE_EXIT {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worker entry for the fork-through-libtest launcher used below. A
    /// no-op in a normal test run; a worker loop (ending in process exit)
    /// when spawned by a supervisor.
    #[test]
    fn worker_entry() {
        maybe_run_worker();
    }

    fn test_launcher() -> WorkerLauncher {
        WorkerLauncher::CurrentExeTest("supervise::tests::worker_entry".into())
    }

    #[test]
    fn frames_roundtrip_and_reject_short_buffers() {
        let f = Frame {
            kind: KIND_ECHO_REQ,
            gen: 7,
            seq: u64::MAX - 3,
            src: 12,
            dst: 99,
            payload: 0xDEAD_BEEF_CAFE_F00D,
        };
        assert_eq!(Frame::decode(&f.encode()), Some(f));
        assert_eq!(Frame::decode(&f.encode()[..FRAME_LEN - 1]), None);
        assert_eq!(Frame::decode(&[]), None);
    }

    #[test]
    fn socket_config_builders() {
        let cfg = SocketConfig::new(test_launcher()).with_echo_wait_ms(50);
        assert_eq!(cfg.echo_wait_ms(), 50);
        assert_eq!(cfg.launcher(), &test_launcher());
        assert_eq!(SocketConfig::new(test_launcher()).echo_wait_ms(), 2_000);
        // An empty command line is rejected at spawn time.
        assert!(WorkerSupervisor::spawn(WorkerLauncher::Command(vec![]), 1).is_err());
    }

    #[test]
    fn supervisor_spawns_heartbeats_kills_and_respawns() {
        let mut sup = WorkerSupervisor::spawn(test_launcher(), 2).expect("spawn workers");
        assert_eq!(sup.worker_count(), 2);
        let first_gen = sup.generation();
        assert!(sup.alive(0) && sup.alive(1));
        assert!(sup.heartbeat(0), "fresh worker 0 answers a ping");
        assert!(sup.heartbeat(1), "fresh worker 1 answers a ping");

        // Echo round-trip through the kernel.
        let req = Frame {
            kind: KIND_ECHO_REQ,
            gen: sup.generation(),
            seq: 42,
            src: 1,
            dst: 5,
            payload: 77,
        };
        sup.send_frame(0, &req).expect("send echo request");
        let deadline = Instant::now() + Duration::from_secs(5);
        let echo = loop {
            if let Some(f) = sup.try_recv_echo() {
                break f;
            }
            assert!(Instant::now() < deadline, "echo never arrived");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!((echo.seq, echo.payload), (42, 77));

        // SIGKILL is real: the process is gone and stops answering.
        sup.kill(0);
        assert!(!sup.alive(0));
        assert!(!sup.heartbeat(0), "a killed worker cannot answer");
        assert!(sup.heartbeat(1), "the survivor is unaffected");

        // Respawn bumps the generation and the worker answers again.
        sup.respawn(0).expect("respawn worker 0");
        assert!(sup.generation() > first_gen);
        assert_eq!(sup.restarts(0), 1);
        assert!(sup.heartbeat(0), "respawned worker answers");
    }
}
