//! Time-series metrics recording and summary statistics for experiments.

use crate::error::SimError;
use crate::Result;
use std::collections::BTreeMap;

/// Summary statistics of a set of samples (used by the paper's Figure 7,
/// which reports median, minimum and maximum over a time window).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl SummaryStats {
    /// Computes summary statistics of a slice of samples.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<SummaryStats> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        let min = sorted[0];
        let max = sorted[count - 1];
        let std_dev = if count > 1 {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64).sqrt()
        } else {
            0.0
        };
        Some(SummaryStats {
            count,
            mean,
            median,
            min,
            max,
            std_dev,
        })
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm), used to
/// aggregate per-period envelopes over simulation ensembles without keeping
/// every sample in memory.
///
/// # Examples
///
/// ```
/// use netsim::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert_eq!(acc.mean(), 2.5);
/// assert!((acc.std_dev() - (5.0 / 3.0_f64).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample into the accumulator.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation (0 for fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Records named time series of `(period, value)` samples during a run.
///
/// # Examples
///
/// ```
/// use netsim::MetricsRecorder;
///
/// let mut m = MetricsRecorder::new();
/// for t in 0..10 {
///     m.record("stashers", t, (100 + t) as f64);
/// }
/// let stats = m.summary("stashers", 0, 10)?;
/// assert_eq!(stats.count, 10);
/// assert_eq!(stats.min, 100.0);
/// # Ok::<(), netsim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRecorder {
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to the named series (creating it if needed).
    pub fn record(&mut self, series: &str, period: u64, value: f64) {
        self.series
            .entry(series.to_string())
            .or_default()
            .push((period, value));
    }

    /// Increments the last sample of the named series at `period` by `delta`,
    /// or starts it at `delta` if the period has no sample yet. Useful for
    /// counting events (e.g. state transitions) as they happen within a round.
    pub fn add(&mut self, series: &str, period: u64, delta: f64) {
        let entry = self.series.entry(series.to_string()).or_default();
        match entry.last_mut() {
            Some((p, v)) if *p == period => *v += delta,
            _ => entry.push((period, delta)),
        }
    }

    /// The names of all recorded series.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The raw samples of a series.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSeries`] if the series does not exist.
    pub fn series(&self, name: &str) -> Result<&[(u64, f64)]> {
        self.series
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SimError::UnknownSeries(name.to_string()))
    }

    /// The values of a series restricted to periods in `[from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSeries`] if the series does not exist.
    pub fn window(&self, name: &str, from: u64, to: u64) -> Result<Vec<f64>> {
        Ok(self
            .series(name)?
            .iter()
            .filter(|(p, _)| *p >= from && *p < to)
            .map(|(_, v)| *v)
            .collect())
    }

    /// Summary statistics of a series over the period window `[from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSeries`] if the series does not exist, or
    /// [`SimError::InvalidConfig`] if the window contains no samples.
    pub fn summary(&self, name: &str, from: u64, to: u64) -> Result<SummaryStats> {
        let values = self.window(name, from, to)?;
        SummaryStats::of(&values).ok_or(SimError::InvalidConfig {
            name: "window",
            reason: format!("series `{name}` has no samples in [{from}, {to})"),
        })
    }

    /// The most recent value of a series, if any.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series
            .get(name)
            .and_then(|s| s.last())
            .map(|(_, v)| *v)
    }

    /// Renders the named series side by side as CSV (`period,name1,name2,…`),
    /// using empty cells where a series has no sample for a period.
    pub fn to_csv(&self, names: &[&str]) -> String {
        let mut periods: Vec<u64> = Vec::new();
        for name in names {
            if let Some(s) = self.series.get(*name) {
                periods.extend(s.iter().map(|(p, _)| *p));
            }
        }
        periods.sort_unstable();
        periods.dedup();

        let mut out = String::from("period");
        for name in names {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for p in periods {
            out.push_str(&p.to_string());
            for name in names {
                out.push(',');
                if let Some(s) = self.series.get(*name) {
                    if let Some((_, v)) = s.iter().find(|(sp, _)| *sp == p) {
                        out.push_str(&format!("{v}"));
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Merges another recorder's series into this one (samples are appended).
    pub fn merge(&mut self, other: &MetricsRecorder) {
        for (name, samples) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend(samples.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats_basics() {
        assert!(SummaryStats::of(&[]).is_none());
        let s = SummaryStats::of(&[1.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (5.0 / 3.0_f64).sqrt()).abs() < 1e-12);
        let s = SummaryStats::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn record_window_and_summary() {
        let mut m = MetricsRecorder::new();
        for t in 0..100u64 {
            m.record("stashers", t, t as f64);
            m.record("receptives", t, 2.0 * t as f64);
        }
        assert_eq!(m.series_names(), vec!["receptives", "stashers"]);
        assert_eq!(m.series("stashers").unwrap().len(), 100);
        assert!(m.series("nope").is_err());
        let w = m.window("stashers", 10, 20).unwrap();
        assert_eq!(w.len(), 10);
        let s = m.summary("stashers", 10, 20).unwrap();
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 19.0);
        assert!(m.summary("stashers", 200, 300).is_err());
        assert_eq!(m.last("receptives"), Some(198.0));
        assert_eq!(m.last("nope"), None);
    }

    #[test]
    fn add_accumulates_within_a_period() {
        let mut m = MetricsRecorder::new();
        m.add("transfers", 5, 1.0);
        m.add("transfers", 5, 1.0);
        m.add("transfers", 6, 1.0);
        assert_eq!(m.series("transfers").unwrap(), &[(5, 2.0), (6, 1.0)]);
    }

    #[test]
    fn csv_output_aligns_series() {
        let mut m = MetricsRecorder::new();
        m.record("a", 0, 1.0);
        m.record("a", 1, 2.0);
        m.record("b", 1, 3.0);
        let csv = m.to_csv(&["a", "b"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "period,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,2,3");
    }

    #[test]
    fn merge_combines_recorders() {
        let mut a = MetricsRecorder::new();
        a.record("x", 0, 1.0);
        let mut b = MetricsRecorder::new();
        b.record("x", 1, 2.0);
        b.record("y", 0, 3.0);
        a.merge(&b);
        assert_eq!(a.series("x").unwrap().len(), 2);
        assert_eq!(a.series("y").unwrap().len(), 1);
    }
}
