//! Unreliable network model: message and connection losses.

use crate::error::check_probability;
use crate::rng::Rng;
use crate::Result;

/// Loss model for the communication medium.
///
/// The paper's system model allows the medium to "drop messages or
/// connections"; Section 3 then models the combined per-contact failure rate
/// as a single group-wide probability `f` and compensates for it in the
/// compiled protocol. This type captures both knobs:
///
/// * `connection_failure` — probability that a contact attempt fails outright
///   (target unreachable, connection refused),
/// * `message_loss` — probability that any single message on an established
///   contact is dropped.
///
/// [`LossConfig::effective_contact_failure`] combines them into the paper's
/// `f` for a contact that needs `messages` messages to complete.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LossConfig {
    connection_failure: f64,
    message_loss: f64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            connection_failure: 0.0,
            message_loss: 0.0,
        }
    }
}

impl LossConfig {
    /// A perfectly reliable network.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// Creates a loss configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if either probability lies outside `[0, 1]`.
    pub fn new(connection_failure: f64, message_loss: f64) -> Result<Self> {
        check_probability("connection_failure", connection_failure)?;
        check_probability("message_loss", message_loss)?;
        Ok(LossConfig {
            connection_failure,
            message_loss,
        })
    }

    /// Probability that a contact attempt fails outright.
    pub fn connection_failure(&self) -> f64 {
        self.connection_failure
    }

    /// Probability that a single message is dropped.
    pub fn message_loss(&self) -> f64 {
        self.message_loss
    }

    /// The paper's group-wide failure rate `f` per connection attempt, for a
    /// contact that must deliver `messages` messages to have its effect:
    /// the attempt succeeds only if the connection is established **and**
    /// every message gets through.
    pub fn effective_contact_failure(&self, messages: u32) -> f64 {
        let success =
            (1.0 - self.connection_failure) * (1.0 - self.message_loss).powi(messages as i32);
        1.0 - success
    }

    /// Samples whether a contact attempt (carrying `messages` messages)
    /// succeeds end to end.
    pub fn contact_succeeds(&self, rng: &mut Rng, messages: u32) -> bool {
        !rng.chance(self.effective_contact_failure(messages))
    }

    /// Samples whether a single message is delivered.
    pub fn message_delivered(&self, rng: &mut Rng) -> bool {
        !rng.chance(self.message_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_network_never_fails() {
        let cfg = LossConfig::reliable();
        let mut rng = Rng::seed_from(1);
        assert_eq!(cfg.effective_contact_failure(3), 0.0);
        for _ in 0..100 {
            assert!(cfg.contact_succeeds(&mut rng, 5));
            assert!(cfg.message_delivered(&mut rng));
        }
    }

    #[test]
    fn invalid_probabilities_rejected() {
        assert!(LossConfig::new(1.5, 0.0).is_err());
        assert!(LossConfig::new(0.0, -0.1).is_err());
        assert!(LossConfig::new(0.2, 0.1).is_ok());
    }

    #[test]
    fn effective_failure_combines_connection_and_messages() {
        let cfg = LossConfig::new(0.1, 0.2).unwrap();
        // success = 0.9 * 0.8^2 = 0.576 → failure = 0.424
        assert!((cfg.effective_contact_failure(2) - (1.0 - 0.9 * 0.64)).abs() < 1e-12);
        assert_eq!(cfg.connection_failure(), 0.1);
        assert_eq!(cfg.message_loss(), 0.2);
        // Zero messages: only the connection matters.
        assert!((cfg.effective_contact_failure(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empirical_rates_match_configuration() {
        let cfg = LossConfig::new(0.3, 0.1).unwrap();
        let mut rng = Rng::seed_from(2);
        let trials = 100_000;
        let ok = (0..trials)
            .filter(|_| cfg.contact_succeeds(&mut rng, 1))
            .count();
        let expected = 0.7 * 0.9;
        assert!((ok as f64 / trials as f64 - expected).abs() < 0.01);
        let delivered = (0..trials)
            .filter(|_| cfg.message_delivered(&mut rng))
            .count();
        assert!((delivered as f64 / trials as f64 - 0.9).abs() < 0.01);
    }
}
