//! Error types for the `netsim` crate.

use std::fmt;

/// The error type returned by fallible `netsim` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A process id was outside the group.
    UnknownProcess {
        /// The offending process index.
        id: usize,
        /// The group size.
        group_size: usize,
    },
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint violated.
        reason: String,
    },
    /// A requested metric series does not exist.
    UnknownSeries(String),
    /// An operating-system I/O operation failed (socket bind, datagram
    /// send, worker spawn, …). The underlying `io::Error` is flattened to a
    /// string so the error type stays `Clone + PartialEq`.
    Io {
        /// What was being attempted, plus the OS error text.
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcess { id, group_size } => {
                write!(f, "process {id} is outside the group of size {group_size}")
            }
            SimError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must lie in [0, 1], got {value}")
            }
            SimError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            SimError::UnknownSeries(name) => write!(f, "unknown metric series `{name}`"),
            SimError::Io { context } => write!(f, "i/o failure: {context}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Wraps an [`std::io::Error`] with context into a [`SimError::Io`].
pub(crate) fn io_error(context: &str, err: std::io::Error) -> SimError {
    SimError::Io {
        context: format!("{context}: {err}"),
    }
}

/// Validates that `value` is a probability in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> crate::Result<()> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SimError::InvalidProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::UnknownProcess {
            id: 5,
            group_size: 3
        }
        .to_string()
        .contains('5'));
        assert!(SimError::InvalidProbability {
            name: "p",
            value: 2.0
        }
        .to_string()
        .contains("[0, 1]"));
        assert!(SimError::InvalidConfig {
            name: "n",
            reason: "zero".into()
        }
        .to_string()
        .contains("zero"));
        assert!(SimError::UnknownSeries("x".into())
            .to_string()
            .contains('x'));
        let io = io_error(
            "bind worker socket",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(io.to_string().contains("bind worker socket"));
        assert!(io.to_string().contains("denied"));
    }

    #[test]
    fn probability_check() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
