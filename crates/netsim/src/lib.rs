//! # netsim — a round-based process-group simulator
//!
//! This crate provides the distributed-systems substrate on which the
//! protocols synthesized by `dpde-core` run, mirroring the experimental setup
//! of *"On the Design of Distributed Protocols from Differential Equations"*
//! (Gupta, PODC 2004): a closed group of `N` processes executing in protocol
//! periods over an unreliable network, subject to crash-stop and
//! crash-recovery failures, massive correlated failures, and host churn.
//!
//! Components:
//!
//! * [`rng`] — a self-contained, seedable xoshiro256** PRNG so simulations
//!   are bit-reproducible (the paper used a Mersenne Twister; only the
//!   statistical quality of the uniform stream matters),
//! * [`stochastic`] — binomial/multinomial/hypergeometric samplers (inherent
//!   [`Rng`] methods) used by the count-level protocol runtimes,
//! * [`group`] — group membership with per-process liveness,
//! * [`network`] — message/connection loss model,
//! * [`failure`] — scheduled failure events (massive failures, crashes,
//!   recoveries) and probabilistic crash/recovery models,
//! * [`churn`] — availability traces: a synthetic Overnet-like generator and
//!   a replay engine (the paper injects hourly churn of 10–25 % of hosts),
//! * [`adversary`] — *adaptive* fault injection: strategies observing the
//!   live per-period run state and emitting crash/recovery injections
//!   mid-run (targeted strikes, cascading failures, heavy-tailed churn),
//! * [`clock`] — protocol-period bookkeeping (periods ↔ wall-clock time),
//! * [`metrics`] — time-series recording and summary statistics for
//!   experiment output,
//! * [`scenario`] — a bundle of all of the above describing one experiment,
//! * [`topology`] — the population topology (one well-mixed group, or `S`
//!   shards exchanging processes via migration at period boundaries),
//! * [`transport`] — the asynchronous message layer: per-link latency
//!   distributions, drop probability, partition windows, retry/timeout/
//!   backoff policies, an in-process virtual-time broker with streaming
//!   delivery statistics, and a Unix-datagram-socket transport that runs
//!   each population segment as a real worker process,
//! * [`supervise`] — worker-process supervision for the socket transport:
//!   spawning, heartbeat health checks, SIGKILL on adversary command, and
//!   generation-bumping restarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod churn;
pub mod clock;
pub mod error;
pub mod failure;
pub mod group;
pub mod metrics;
pub mod network;
pub mod rng;
pub mod scenario;
pub mod stochastic;
pub mod supervise;
pub mod topology;
pub mod transport;

pub use adversary::{
    Adversary, AdversaryHandle, AdversaryState, AdversaryView, CascadingFailure, ChurnBurst,
    HeavyTailedChurn, Injection, InjectionRecord, ObliviousSchedule, TargetLargestState,
    TargetWinner, TransportGauges,
};
pub use churn::{ChurnEvent, ChurnTrace, SyntheticChurnConfig};
pub use clock::PeriodClock;
pub use error::SimError;
pub use failure::{FailureEvent, FailureModel, FailureSchedule};
pub use group::{Group, ProcessId};
pub use metrics::{MetricsRecorder, OnlineStats, SummaryStats};
pub use network::LossConfig;
pub use rng::Rng;
pub use scenario::Scenario;
pub use supervise::{maybe_run_worker, SocketConfig, WorkerLauncher, WorkerSupervisor};
pub use topology::{Placement, ShardConfig, ShardFailure, ShardPartition, Topology};
pub use transport::{
    Backoff, Delivery, InProcTransport, LatencyModel, LinkModel, LinkPartition, RetryPolicy,
    RingBuffer, TimeoutPolicy, Transport, TransportBackend, TransportConfig, TransportStats,
    UdsTransport,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
