//! Message transport: per-link latency, drops, partitions, and an
//! in-process broker with streaming delivery statistics.
//!
//! Everything else in `netsim` advances in synchronized protocol periods;
//! this module is the substrate for *asynchronous* execution, where each
//! protocol contact is an actual message that is sent, queued, delayed by a
//! sampled per-link latency, and finally delivered or dropped. The design
//! notes live here (the ROADMAP points at this module):
//!
//! * **Links are segment pairs.** Modelling `N²` per-process links would be
//!   both unaffordable and unidentifiable; instead the population is split
//!   into `segments` contiguous index blocks and every (ordered-free) segment
//!   pair is one link with its own [`LinkModel`] — latency distribution plus
//!   drop probability — falling back to a configurable default. One segment
//!   (the default) degenerates to a single uniform link, the paper's
//!   well-mixed medium.
//! * **Partitions are period windows.** A [`LinkPartition`] blocks every
//!   message between two segments for an inclusive period window, mirroring
//!   [`ShardPartition`](crate::topology::ShardPartition) but at the message
//!   layer: sends during the window are queued and resolved as timeouts, so
//!   the sender still pays the latency before learning nothing came back.
//! * **The broker is a virtual-time queue.** [`InProcTransport`] keeps
//!   messages in a binary heap ordered by `(deliver_at, sequence)`; ties are
//!   impossible by construction, so a seeded run replays **bit-identically**.
//!   The [`Transport`] trait is the seam for socket-shaped implementations
//!   later — the consuming runtime only sees `send` / `next_ready`.
//! * **Statistics stream while the run executes.** Every send/delivery/drop
//!   updates an [`Arc`]-shared [`TransportStats`] (atomic counters plus a
//!   bounded [`RingBuffer`] of recent per-link delivery latencies), so an
//!   observer — or another thread — can read queue depth, latency and drop
//!   counts mid-run instead of waiting for post-hoc recorders.

use crate::error::{check_probability, SimError};
use crate::rng::Rng;
use crate::Result;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::{Arc, Mutex};

/// Per-message delivery latency distribution, in seconds of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Instant delivery (the synchronous limit).
    Zero,
    /// Every message takes exactly this many seconds.
    Constant(f64),
    /// Uniform in `[min, max]` seconds.
    Uniform {
        /// Lower bound (seconds).
        min: f64,
        /// Upper bound (seconds).
        max: f64,
    },
    /// Exponential with the given mean in seconds (the classic M/M queueing
    /// assumption; heavy enough a tail to exercise out-of-order delivery).
    Exponential {
        /// Mean latency (seconds).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one delivery latency.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(secs) => secs,
            LatencyModel::Uniform { min, max } => rng.uniform(min, max),
            LatencyModel::Exponential { mean } => {
                // Inverse CDF; guard the u = 1 endpoint of `next_f64`.
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
        }
    }

    /// The distribution's mean, in seconds.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(secs) => secs,
            LatencyModel::Uniform { min, max } => 0.5 * (min + max),
            LatencyModel::Exponential { mean } => mean,
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = match *self {
            LatencyModel::Zero => true,
            LatencyModel::Constant(secs) => secs.is_finite() && secs >= 0.0,
            LatencyModel::Uniform { min, max } => {
                min.is_finite() && max.is_finite() && 0.0 <= min && min <= max
            }
            LatencyModel::Exponential { mean } => mean.is_finite() && mean >= 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::InvalidConfig {
                name: "latency",
                reason: format!("latency model {self:?} is not a valid non-negative distribution"),
            })
        }
    }
}

/// The behaviour of one link: how long messages take and how often they are
/// lost. A link connects two population segments (or a segment to itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    latency: LatencyModel,
    drop_prob: f64,
}

impl LinkModel {
    /// A perfect link: zero latency, no drops.
    pub fn reliable() -> Self {
        LinkModel {
            latency: LatencyModel::Zero,
            drop_prob: 0.0,
        }
    }

    /// Creates a link model.
    ///
    /// # Errors
    ///
    /// Returns an error if the latency distribution is invalid or the drop
    /// probability lies outside `[0, 1]`.
    pub fn new(latency: LatencyModel, drop_prob: f64) -> Result<Self> {
        latency.validate()?;
        check_probability("drop_prob", drop_prob)?;
        Ok(LinkModel { latency, drop_prob })
    }

    /// The latency distribution.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

/// A partition window between two segments: every message between them sent
/// during the inclusive period window `from_period ..= to_period` is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// One side of the partitioned link.
    pub a: usize,
    /// The other side (`a == b` partitions a segment from itself).
    pub b: usize,
    /// First period of the window (inclusive).
    pub from_period: u64,
    /// Last period of the window (inclusive).
    pub to_period: u64,
}

impl LinkPartition {
    /// `true` if the partition is in force at `period`.
    pub fn active_at(&self, period: u64) -> bool {
        (self.from_period..=self.to_period).contains(&period)
    }
}

/// Decorrelated-jitter exponential backoff between send retries, in seconds
/// of virtual time: each delay is drawn uniformly from `[base, 3·prev]` and
/// clamped to `cap` (the AWS "decorrelated jitter" recipe — it spreads
/// retries as well as full jitter while still growing exponentially).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    base: f64,
    cap: f64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: 1.0,
            cap: 30.0,
        }
    }
}

impl Backoff {
    /// Creates a backoff with the given base delay and cap, both in seconds.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < base <= cap` and both are finite.
    pub fn new(base: f64, cap: f64) -> Result<Self> {
        if base.is_finite() && cap.is_finite() && base > 0.0 && base <= cap {
            Ok(Backoff { base, cap })
        } else {
            Err(SimError::InvalidConfig {
                name: "backoff",
                reason: format!("need 0 < base <= cap, got base {base}, cap {cap}"),
            })
        }
    }

    /// The minimum (and first) delay, in seconds.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The maximum delay, in seconds.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Draws the next delay given the previous one (decorrelated jitter).
    pub fn next_delay(&self, prev: f64, rng: &mut Rng) -> f64 {
        rng.uniform(self.base, (prev * 3.0).max(self.base))
            .min(self.cap)
    }
}

/// How many times a message is attempted before the sender gives up.
/// Retries are only meaningful together with a [`TimeoutPolicy`] deadline:
/// without one the sender can never *observe* a loss (an undetected drop
/// simply resolves as a timeout at the sampled latency, exactly the paper's
/// model), so the policy degrades to a single attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// A single attempt — the historical behaviour, bit-for-bit.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
        }
    }

    /// Up to `max_attempts` tries, spaced by `backoff`.
    ///
    /// # Errors
    ///
    /// Returns an error if `max_attempts` is zero.
    pub fn new(max_attempts: u32, backoff: Backoff) -> Result<Self> {
        if max_attempts == 0 {
            return Err(SimError::InvalidConfig {
                name: "retry",
                reason: "a retry policy needs at least one attempt".into(),
            });
        }
        Ok(RetryPolicy {
            max_attempts,
            backoff,
        })
    }

    /// Maximum number of attempts (≥ 1).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The backoff schedule between attempts.
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }
}

/// Per-attempt delivery deadline, in seconds of virtual time. A message that
/// has not arrived by the deadline resolves as a timeout (the same
/// `delivered == false` semantics [`InProcTransport`] already models for
/// drops and partitions) and becomes eligible for retry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeoutPolicy {
    deadline: Option<f64>,
}

impl TimeoutPolicy {
    /// No deadline: the sender waits for the sampled latency, however long.
    pub fn none() -> Self {
        TimeoutPolicy { deadline: None }
    }

    /// Each attempt times out after `secs` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error unless `secs` is finite and positive.
    pub fn after(secs: f64) -> Result<Self> {
        if secs.is_finite() && secs > 0.0 {
            Ok(TimeoutPolicy {
                deadline: Some(secs),
            })
        } else {
            Err(SimError::InvalidConfig {
                name: "timeout",
                reason: format!("deadline must be finite and positive, got {secs}"),
            })
        }
    }

    /// The per-attempt deadline, if one is set.
    pub fn deadline(&self) -> Option<f64> {
        self.deadline
    }
}

/// Which physical medium carries the messages.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TransportBackend {
    /// The deterministic in-process virtual-time broker (the default).
    #[default]
    InProcess,
    /// Real Unix datagram sockets: one spawned worker process per population
    /// segment, supervised per [`SocketConfig`](crate::supervise::SocketConfig). Virtual-time semantics are
    /// unchanged — the sockets carry every virtually-delivered message
    /// through the kernel and back, so loss, death and recovery are
    /// *suffered*, not simulated. See [`UdsTransport`].
    UnixSocket(crate::supervise::SocketConfig),
}

/// Everything a scenario needs to say about its message transport: the
/// segment count, the default link, per-segment-pair overrides and partition
/// windows — plus the retry/timeout robustness layer and the physical
/// backend. Attaching one to a [`Scenario`](crate::Scenario) (via
/// [`Scenario::with_transport`](crate::Scenario::with_transport)) is what
/// routes a run onto the asynchronous message-passing tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    segments: usize,
    default_link: LinkModel,
    overrides: Vec<(usize, usize, LinkModel)>,
    partitions: Vec<LinkPartition>,
    retry: RetryPolicy,
    timeout: TimeoutPolicy,
    supervision: Option<u64>,
    backend: TransportBackend,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::new(LinkModel::reliable())
    }
}

impl TransportConfig {
    /// One segment, every message on `default_link`.
    pub fn new(default_link: LinkModel) -> Self {
        TransportConfig {
            segments: 1,
            default_link,
            overrides: Vec::new(),
            partitions: Vec::new(),
            retry: RetryPolicy::none(),
            timeout: TimeoutPolicy::none(),
            supervision: None,
            backend: TransportBackend::InProcess,
        }
    }

    /// Splits the population into `segments` contiguous index blocks; every
    /// segment pair becomes a distinct link.
    ///
    /// # Errors
    ///
    /// Returns an error if `segments` is zero.
    pub fn with_segments(mut self, segments: usize) -> Result<Self> {
        if segments == 0 {
            return Err(SimError::InvalidConfig {
                name: "segments",
                reason: "transport needs at least one segment".into(),
            });
        }
        self.segments = segments;
        Ok(self)
    }

    /// Overrides the link model between segments `a` and `b` (symmetric;
    /// `a == b` sets the segment's internal link).
    ///
    /// # Errors
    ///
    /// Returns an error if either segment index is out of range.
    pub fn with_link(mut self, a: usize, b: usize, model: LinkModel) -> Result<Self> {
        self.check_segment(a)?;
        self.check_segment(b)?;
        self.overrides.push((a.min(b), a.max(b), model));
        Ok(self)
    }

    /// Partitions the link between segments `a` and `b` for the inclusive
    /// period window `from_period ..= to_period`.
    ///
    /// # Errors
    ///
    /// Returns an error if a segment index is out of range or the window is
    /// empty (`from_period > to_period`).
    pub fn with_partition(
        mut self,
        a: usize,
        b: usize,
        from_period: u64,
        to_period: u64,
    ) -> Result<Self> {
        self.check_segment(a)?;
        self.check_segment(b)?;
        if from_period > to_period {
            return Err(SimError::InvalidConfig {
                name: "link_partition",
                reason: format!("window {from_period}..={to_period} is empty"),
            });
        }
        self.partitions.push(LinkPartition {
            a: a.min(b),
            b: a.max(b),
            from_period,
            to_period,
        });
        Ok(self)
    }

    /// Sets the send retry policy (default: a single attempt).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-attempt delivery deadline (default: none).
    pub fn with_timeout(mut self, timeout: TimeoutPolicy) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables worker supervision: a segment killed by
    /// [`Injection::KillWorker`](crate::Injection::KillWorker) is restarted
    /// from the last period-boundary checkpoint after `restart_delay_periods`
    /// periods. Without supervision a killed segment stays parked for the
    /// rest of the run (graceful degradation).
    pub fn with_supervision(mut self, restart_delay_periods: u64) -> Self {
        self.supervision = Some(restart_delay_periods);
        self
    }

    /// Selects the physical backend (default: the in-process broker).
    pub fn with_backend(mut self, backend: TransportBackend) -> Self {
        self.backend = backend;
        self
    }

    fn check_segment(&self, segment: usize) -> Result<()> {
        if segment >= self.segments {
            return Err(SimError::InvalidConfig {
                name: "segment",
                reason: format!(
                    "segment {segment} out of range for {} segments",
                    self.segments
                ),
            });
        }
        Ok(())
    }

    /// The number of population segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The link model used by every pair without an override.
    pub fn default_link(&self) -> LinkModel {
        self.default_link
    }

    /// The partition windows.
    pub fn partitions(&self) -> &[LinkPartition] {
        &self.partitions
    }

    /// The send retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// The per-attempt delivery deadline policy.
    pub fn timeout(&self) -> TimeoutPolicy {
        self.timeout
    }

    /// Restart delay (periods) if supervision is enabled, `None` otherwise.
    pub fn supervision(&self) -> Option<u64> {
        self.supervision
    }

    /// The physical backend.
    pub fn backend(&self) -> &TransportBackend {
        &self.backend
    }

    /// The segment of process index `p` in a population of `n`: contiguous
    /// near-equal blocks, matching how experiments place initial states.
    pub fn segment_of(&self, p: usize, n: usize) -> usize {
        debug_assert!(p < n);
        (p * self.segments) / n
    }

    /// The effective link model between two segments (last override wins).
    pub fn link(&self, a: usize, b: usize) -> LinkModel {
        let (lo, hi) = (a.min(b), a.max(b));
        self.overrides
            .iter()
            .rev()
            .find(|(oa, ob, _)| (*oa, *ob) == (lo, hi))
            .map(|(_, _, m)| *m)
            .unwrap_or(self.default_link)
    }

    /// `true` if the link between two segments is partitioned at `period`.
    pub fn is_partitioned(&self, a: usize, b: usize, period: u64) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        self.partitions
            .iter()
            .any(|p| (p.a, p.b) == (lo, hi) && p.active_at(period))
    }

    /// Number of distinct links (unordered segment pairs, including each
    /// segment's internal link) — the size of the per-link statistics table.
    pub fn link_count(&self) -> usize {
        self.segments * (self.segments + 1) / 2
    }

    /// Dense index of the link between two segments, for per-link counters.
    pub fn link_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        // Row `lo` of the upper triangle starts after lo rows of decreasing
        // length: Σ_{r<lo} (segments - r).
        lo * self.segments - lo * (lo + 1) / 2 + lo + (hi - lo)
    }
}

/// A message handed back by [`Transport::next_ready`]. `delivered == false`
/// means the message was dropped or partitioned: the event still resolves at
/// `deliver_at` (the sender's timeout), but carries no response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Sender process index.
    pub src: u32,
    /// Receiver process index.
    pub dst: u32,
    /// Opaque payload (the consuming runtime encodes its action bookkeeping
    /// here; the transport never interprets it).
    pub payload: u64,
    /// Virtual send time (seconds).
    pub sent_at: f64,
    /// Virtual resolution time (seconds).
    pub deliver_at: f64,
    /// `false` if the message was dropped by loss or a partition window.
    pub delivered: bool,
}

/// The message-passing seam between a runtime and the medium: the in-process
/// broker ([`InProcTransport`]) and the Unix-datagram-socket transport
/// ([`UdsTransport`]) both implement it, so a runtime swaps between a
/// simulated and a real networked medium without changing its event loop.
pub trait Transport {
    /// Queues a message from `src` to `dst` at virtual time `now` (during
    /// `period`), sampling the link's latency and drop fate from `rng`.
    /// Returns the resolution time.
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64;

    /// Pops the earliest message with `deliver_at < until`, if any.
    fn next_ready(&mut self, until: f64) -> Option<Delivery>;

    /// The resolution time of the earliest queued message.
    fn next_time(&self) -> Option<f64>;

    /// Number of messages currently in flight.
    fn queue_depth(&self) -> usize;
}

/// Heap entry: min-ordered by `(deliver_at, seq)`. The sequence number makes
/// the order total and deterministic even when two messages resolve at the
/// same instant (e.g. two zero-latency probes from one action).
#[derive(Debug, Clone, Copy)]
struct Queued {
    deliver_at: f64,
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest message.
        other
            .deliver_at
            .total_cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The in-process broker: a virtual-time priority queue plus shared
/// statistics. Single-threaded by design (the consuming runtime owns it);
/// the [`TransportStats`] handle is what crosses threads.
#[derive(Debug)]
pub struct InProcTransport {
    config: TransportConfig,
    n: usize,
    queue: BinaryHeap<Queued>,
    seq: u64,
    stats: Arc<TransportStats>,
}

impl InProcTransport {
    /// Creates a broker for a population of `n` processes.
    pub fn new(config: TransportConfig, n: usize) -> Self {
        let stats = Arc::new(TransportStats::new(config.link_count()));
        InProcTransport {
            config,
            n,
            queue: BinaryHeap::new(),
            seq: 0,
            stats,
        }
    }

    /// The transport configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// A cloneable, thread-safe handle onto the live statistics.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// The population size the broker was built for.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Queues one message, running the full retry/timeout machinery, and
    /// reports where it went. Shared between the trait `send` and the
    /// socket-backed transport (which additionally pushes a datagram for
    /// every virtually-delivered message).
    ///
    /// With the default policies (single attempt, no deadline) the RNG draw
    /// sequence and the outcome are bit-for-bit the historical ones. With a
    /// deadline `d`, an attempt succeeds only if it is neither dropped nor
    /// partitioned *and* its sampled latency fits inside `d`; every failed
    /// attempt burns the full deadline (the sender learns nothing earlier),
    /// then a decorrelated-jitter backoff delay, before the next try.
    pub(crate) fn send_inner(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> SendOutcome {
        let sa = self.config.segment_of(src as usize, self.n);
        let sb = self.config.segment_of(dst as usize, self.n);
        let link = self.config.link(sa, sb);
        let link_ix = self.config.link_index(sa, sb);
        let attempts = self.config.retry.max_attempts();
        let backoff = self.config.retry.backoff();
        let mut elapsed = 0.0; // virtual seconds burned by failed attempts
        let mut prev_delay = backoff.base();
        let mut attempt = 0u32;
        let (deliver_at, delivered) = loop {
            attempt += 1;
            let latency = link.latency().sample(rng);
            let partitioned = self.config.is_partitioned(sa, sb, period);
            let delivered = !partitioned && !rng.chance(link.drop_prob());
            match self.config.timeout.deadline() {
                // No deadline: the historical single-shot path, whatever the
                // fate — an undetected loss resolves at the sampled latency.
                None => break (now + latency, delivered),
                Some(d) => {
                    if delivered && latency <= d {
                        break (now + elapsed + latency, true);
                    }
                    self.stats.on_timeout();
                    if attempt >= attempts {
                        break (now + elapsed + d, false);
                    }
                    self.stats.on_retry();
                    let delay = backoff.next_delay(prev_delay, rng);
                    prev_delay = delay;
                    elapsed += d + delay;
                }
            }
        };
        self.seq += 1;
        self.queue.push(Queued {
            deliver_at,
            seq: self.seq,
            delivery: Delivery {
                src,
                dst,
                payload,
                sent_at: now,
                deliver_at,
                delivered,
            },
        });
        self.stats.on_send(link_ix);
        SendOutcome {
            deliver_at,
            seq: self.seq,
            delivered,
            dst_segment: sb,
        }
    }

    /// `(seq, deliver_at, dst_segment)` of the earliest queued message.
    pub(crate) fn head(&self) -> Option<(u64, f64, usize)> {
        self.queue.peek().map(|q| {
            (
                q.seq,
                q.deliver_at,
                self.config.segment_of(q.delivery.dst as usize, self.n),
            )
        })
    }

    /// Pops the head unconditionally, resolving statistics. `force_timeout`
    /// downgrades a virtually-delivered message to a timeout (used when the
    /// physical worker owning the destination is dead or wedged).
    pub(crate) fn pop_head(&mut self, force_timeout: bool) -> Option<Delivery> {
        let queued = self.queue.pop()?;
        let mut d = queued.delivery;
        if force_timeout {
            d.delivered = false;
        }
        let sa = self.config.segment_of(d.src as usize, self.n);
        let sb = self.config.segment_of(d.dst as usize, self.n);
        self.stats.on_resolve(
            self.config.link_index(sa, sb),
            d.delivered,
            d.deliver_at - d.sent_at,
        );
        Some(d)
    }
}

/// What [`InProcTransport::send_inner`] did with a message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SendOutcome {
    /// Virtual resolution time.
    pub deliver_at: f64,
    /// The broker-assigned sequence number (globally unique per run).
    pub seq: u64,
    /// `true` if the message will be delivered (not dropped/partitioned/
    /// timed out).
    pub delivered: bool,
    /// Segment of the destination process.
    pub dst_segment: usize,
}

impl Transport for InProcTransport {
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64 {
        self.send_inner(src, dst, payload, now, period, rng)
            .deliver_at
    }

    fn next_ready(&mut self, until: f64) -> Option<Delivery> {
        if self.queue.peek()?.deliver_at >= until {
            return None;
        }
        self.pop_head(false)
    }

    fn next_time(&self) -> Option<f64> {
        self.queue.peek().map(|q| q.deliver_at)
    }

    fn queue_depth(&self) -> usize {
        self.queue.len()
    }
}

/// The socket-backed transport: virtual-time semantics from the embedded
/// [`InProcTransport`], physical reality from Unix datagram sockets.
///
/// Every message the virtual broker decides is *delivered* is additionally
/// pushed through the kernel as a datagram to the worker process owning the
/// destination segment (one worker per segment, spawned and supervised by a
/// [`WorkerSupervisor`](crate::supervise::WorkerSupervisor)); the worker
/// echoes it back, and [`Transport::next_ready`] releases a message only
/// once its echo has actually arrived. The RNG draw sequence is exactly the
/// in-proc one, so with healthy workers and identical seeds a socket run
/// replays the in-proc run bit-for-bit — what changes is that process
/// death, scheduling stalls and socket failures are now *suffered*:
///
/// * a worker SIGKILLed via [`UdsTransport::kill_segment`] (commanded by an
///   adversary [`Injection::KillWorker`](crate::Injection::KillWorker))
///   parks its segment — in-flight and future messages to it resolve as
///   timeouts, accumulating in [`TransportStats::timed_out`] — instead of
///   failing or hanging the run;
/// * a wedged worker (no echo within the
///   [`SocketConfig`](crate::supervise::SocketConfig) budget, bounded
///   physical resends exhausted, heartbeat dead) is parked the same way, so
///   no socket can stall the event loop forever;
/// * [`UdsTransport::revive_segment`] respawns the worker under a bumped
///   generation and unparks the segment, completing the checkpoint/restart
///   arc driven by the async runtime.
#[derive(Debug)]
pub struct UdsTransport {
    inner: InProcTransport,
    supervisor: crate::supervise::WorkerSupervisor,
    /// Virtually-delivered messages whose echo is still outstanding:
    /// broker seq → (wire frame for resends, destination segment).
    awaiting: std::collections::HashMap<u64, (crate::supervise::Frame, usize)>,
    /// Echoes that arrived before their message reached the heap head.
    acked: std::collections::HashSet<u64>,
    /// Messages that must resolve as timeouts (parked destination, send
    /// failure, echo budget exhausted).
    timeouts: std::collections::HashSet<u64>,
    /// Segments whose worker is dead or wedged.
    parked: Vec<bool>,
    /// Wall-clock budget for one echo round-trip, resends included.
    echo_wait: std::time::Duration,
}

impl UdsTransport {
    /// Spawns the worker processes and builds the transport.
    ///
    /// # Errors
    ///
    /// Returns an error if the config's backend is not
    /// [`TransportBackend::UnixSocket`], or if sockets/workers cannot be
    /// set up ([`SimError::Io`]).
    pub fn new(config: TransportConfig, n: usize) -> Result<Self> {
        let TransportBackend::UnixSocket(socket_cfg) = config.backend().clone() else {
            return Err(SimError::InvalidConfig {
                name: "backend",
                reason: "UdsTransport needs TransportBackend::UnixSocket".into(),
            });
        };
        let segments = config.segments();
        let supervisor =
            crate::supervise::WorkerSupervisor::spawn(socket_cfg.launcher().clone(), segments)?;
        Ok(UdsTransport {
            inner: InProcTransport::new(config, n),
            supervisor,
            awaiting: std::collections::HashMap::new(),
            acked: std::collections::HashSet::new(),
            timeouts: std::collections::HashSet::new(),
            parked: vec![false; segments],
            echo_wait: std::time::Duration::from_millis(socket_cfg.echo_wait_ms()),
        })
    }

    /// The transport configuration.
    pub fn config(&self) -> &TransportConfig {
        self.inner.config()
    }

    /// A cloneable, thread-safe handle onto the live statistics.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.inner.stats()
    }

    /// The supervisor owning the worker processes.
    pub fn supervisor(&self) -> &crate::supervise::WorkerSupervisor {
        &self.supervisor
    }

    /// `true` if the segment's worker is currently dead or wedged.
    pub fn is_parked(&self, segment: usize) -> bool {
        self.parked[segment]
    }

    /// SIGKILLs the worker owning `segment` and parks the segment: all its
    /// in-flight messages, and every future message to it, resolve as
    /// timeouts. Idempotent; the run keeps going.
    pub fn kill_segment(&mut self, segment: usize) {
        self.supervisor.kill(segment);
        self.park(segment);
    }

    /// Respawns the worker owning `segment` under a bumped generation and
    /// unparks the segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if the spawn or handshake fails; the
    /// segment stays parked in that case.
    pub fn revive_segment(&mut self, segment: usize) -> Result<()> {
        self.supervisor.respawn(segment)?;
        self.parked[segment] = false;
        Ok(())
    }

    fn park(&mut self, segment: usize) {
        self.parked[segment] = true;
        let stats = self.inner.stats();
        let dead: Vec<u64> = self
            .awaiting
            .iter()
            .filter(|(_, (_, seg))| *seg == segment)
            .map(|(seq, _)| *seq)
            .collect();
        for seq in dead {
            self.awaiting.remove(&seq);
            self.timeouts.insert(seq);
            stats.on_timeout();
        }
    }

    /// Non-blocking: move every arrived echo from `awaiting` to `acked`.
    fn drain_echoes(&mut self) {
        while let Some(frame) = self.supervisor.try_recv_echo() {
            if self.awaiting.remove(&frame.seq).is_some() {
                self.acked.insert(frame.seq);
            }
        }
    }

    /// Pushes one echo request, draining echoes between `WouldBlock`
    /// retries: a burst of sends can fill both datagram queues (Linux caps
    /// them at `net.unix.max_dgram_qlen`), and the worker cannot drain ours
    /// while its echoes have nowhere to go.
    fn push_physical(
        &mut self,
        seg: usize,
        frame: &crate::supervise::Frame,
    ) -> std::io::Result<()> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
        loop {
            match self.supervisor.try_send_frame(seg, frame) {
                Ok(()) => return Ok(()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        && std::time::Instant::now() < deadline =>
                {
                    self.drain_echoes();
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Transport for UdsTransport {
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64 {
        let outcome = self.inner.send_inner(src, dst, payload, now, period, rng);
        if outcome.delivered {
            let seg = outcome.dst_segment;
            if self.parked[seg] {
                self.timeouts.insert(outcome.seq);
                self.inner.stats().on_timeout();
            } else {
                let frame = crate::supervise::Frame {
                    kind: crate::supervise::KIND_ECHO_REQ,
                    gen: self.supervisor.generation(),
                    seq: outcome.seq,
                    src,
                    dst,
                    payload,
                };
                if self.push_physical(seg, &frame).is_ok() {
                    self.awaiting.insert(outcome.seq, (frame, seg));
                } else {
                    self.timeouts.insert(outcome.seq);
                    self.inner.stats().on_timeout();
                }
            }
        }
        self.drain_echoes();
        outcome.deliver_at
    }

    fn next_ready(&mut self, until: f64) -> Option<Delivery> {
        let (seq, deliver_at, _) = self.inner.head()?;
        if deliver_at >= until {
            return None;
        }
        self.drain_echoes();
        if self.acked.remove(&seq) {
            return self.inner.pop_head(false);
        }
        if self.timeouts.remove(&seq) {
            return self.inner.pop_head(true);
        }
        let Some((frame, seg)) = self.awaiting.get(&seq).copied() else {
            // No physical leg: the virtual fate (a drop or partition
            // timeout) stands as-is.
            return self.inner.pop_head(false);
        };
        // The echo is outstanding: wait for the kernel round-trip, resending
        // physically a few times, inside a hard wall-clock budget.
        let start = std::time::Instant::now();
        let resend_every = (self.echo_wait / 4).max(std::time::Duration::from_millis(1));
        let mut next_resend = start + resend_every;
        let stats = self.inner.stats();
        loop {
            self.drain_echoes();
            if self.acked.remove(&seq) {
                return self.inner.pop_head(false);
            }
            if self.parked[seg] || self.timeouts.remove(&seq) {
                self.awaiting.remove(&seq);
                return self.inner.pop_head(true);
            }
            let now = std::time::Instant::now();
            if now.duration_since(start) >= self.echo_wait {
                // Budget exhausted: the worker is dead or wedged. Confirm
                // with a heartbeat; park unless it somehow answers.
                self.awaiting.remove(&seq);
                stats.on_timeout();
                if !self.supervisor.heartbeat(seg) {
                    self.park(seg);
                }
                return self.inner.pop_head(true);
            }
            if now >= next_resend {
                let _ = self.supervisor.try_send_frame(seg, &frame);
                stats.on_retry();
                next_resend = now + resend_every;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    fn next_time(&self) -> Option<f64> {
        self.inner.next_time()
    }

    fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }
}

/// A bounded ring of recent samples — the streaming window behind the
/// per-link latency statistics (old samples are overwritten, so memory stays
/// constant however long the run is).
#[derive(Debug, Clone)]
pub struct RingBuffer {
    samples: Vec<f64>,
    capacity: usize,
    next: usize,
    total_pushed: u64,
}

impl RingBuffer {
    /// Creates a ring holding up to `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            samples: Vec::with_capacity(capacity.min(64)),
            capacity: capacity.max(1),
            next: 0,
            total_pushed: 0,
        }
    }

    /// Adds a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_pushed += 1;
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Mean of the samples in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum of the samples in the window (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Per-link message counters.
#[derive(Debug, Default)]
struct LinkCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// Live transport statistics, shared between the broker (writer) and any
/// number of reader threads: global and per-link sent/delivered/dropped
/// counters plus ring buffers of recent delivery latencies. All reads are
/// wait-free except the latency windows (one short mutex).
#[derive(Debug)]
pub struct TransportStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    timed_out: AtomicU64,
    retries: AtomicU64,
    links: Vec<LinkCounters>,
    latencies: Mutex<RingBuffer>,
    link_latencies: Vec<Mutex<RingBuffer>>,
}

/// Capacity of the streaming latency windows.
const LATENCY_WINDOW: usize = 1024;

impl TransportStats {
    fn new(link_count: usize) -> Self {
        TransportStats {
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            links: (0..link_count).map(|_| LinkCounters::default()).collect(),
            latencies: Mutex::new(RingBuffer::new(LATENCY_WINDOW)),
            link_latencies: (0..link_count)
                .map(|_| Mutex::new(RingBuffer::new(LATENCY_WINDOW)))
                .collect(),
        }
    }

    fn on_send(&self, link: usize) {
        self.sent.fetch_add(1, MemOrdering::Relaxed);
        self.links[link].sent.fetch_add(1, MemOrdering::Relaxed);
    }

    fn on_resolve(&self, link: usize, delivered: bool, latency: f64) {
        if delivered {
            self.delivered.fetch_add(1, MemOrdering::Relaxed);
            self.links[link]
                .delivered
                .fetch_add(1, MemOrdering::Relaxed);
            self.latencies.lock().expect("stats lock").push(latency);
            self.link_latencies[link]
                .lock()
                .expect("stats lock")
                .push(latency);
        } else {
            self.dropped.fetch_add(1, MemOrdering::Relaxed);
            self.links[link].dropped.fetch_add(1, MemOrdering::Relaxed);
        }
    }

    /// Total messages ever sent.
    pub fn sent(&self) -> u64 {
        self.sent.load(MemOrdering::Relaxed)
    }

    /// Total messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(MemOrdering::Relaxed)
    }

    pub(crate) fn on_timeout(&self) {
        self.timed_out.fetch_add(1, MemOrdering::Relaxed);
    }

    pub(crate) fn on_retry(&self) {
        self.retries.fetch_add(1, MemOrdering::Relaxed);
    }

    /// Total messages dropped (loss or partition).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(MemOrdering::Relaxed)
    }

    /// Attempts that expired against a [`TimeoutPolicy`] deadline, plus
    /// physical socket waits the echo fabric gave up on.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(MemOrdering::Relaxed)
    }

    /// Extra attempts spent by the [`RetryPolicy`] (first tries excluded).
    pub fn retries(&self) -> u64 {
        self.retries.load(MemOrdering::Relaxed)
    }

    /// Messages currently in flight (sent but not yet resolved).
    pub fn in_flight(&self) -> u64 {
        self.sent() - self.delivered() - self.dropped()
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `(sent, delivered, dropped)` for one link index (see
    /// [`TransportConfig::link_index`]).
    pub fn link_counts(&self, link: usize) -> (u64, u64, u64) {
        let l = &self.links[link];
        (
            l.sent.load(MemOrdering::Relaxed),
            l.delivered.load(MemOrdering::Relaxed),
            l.dropped.load(MemOrdering::Relaxed),
        )
    }

    /// Mean delivery latency over the recent window (seconds; 0 if nothing
    /// was delivered yet).
    pub fn recent_latency_mean(&self) -> f64 {
        self.latencies.lock().expect("stats lock").mean()
    }

    /// Maximum delivery latency over the recent window (seconds).
    pub fn recent_latency_max(&self) -> f64 {
        self.latencies.lock().expect("stats lock").max()
    }

    /// Mean delivery latency of one link over its recent window (seconds).
    pub fn link_latency_mean(&self, link: usize) -> f64 {
        self.link_latencies[link].lock().expect("stats lock").mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_models_sample_and_validate() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), 0.0);
        assert_eq!(LatencyModel::Constant(3.0).sample(&mut rng), 3.0);
        for _ in 0..100 {
            let u = LatencyModel::Uniform { min: 1.0, max: 2.0 }.sample(&mut rng);
            assert!((1.0..=2.0).contains(&u));
            let e = LatencyModel::Exponential { mean: 5.0 }.sample(&mut rng);
            assert!(e >= 0.0);
        }
        // Empirical mean of the exponential tracks its parameter.
        let mean = (0..20_000)
            .map(|_| LatencyModel::Exponential { mean: 5.0 }.sample(&mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert_eq!(LatencyModel::Uniform { min: 0.0, max: 4.0 }.mean(), 2.0);
        // Invalid models are rejected through LinkModel::new.
        assert!(LinkModel::new(LatencyModel::Constant(-1.0), 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Uniform { min: 2.0, max: 1.0 }, 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Exponential { mean: f64::NAN }, 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Zero, 1.5).is_err());
        let link = LinkModel::new(LatencyModel::Constant(2.0), 0.25).unwrap();
        assert_eq!(link.latency(), LatencyModel::Constant(2.0));
        assert_eq!(link.drop_prob(), 0.25);
    }

    #[test]
    fn config_segments_links_and_partitions() {
        let cfg = TransportConfig::new(LinkModel::reliable())
            .with_segments(3)
            .unwrap()
            .with_link(
                0,
                2,
                LinkModel::new(LatencyModel::Constant(9.0), 0.0).unwrap(),
            )
            .unwrap()
            .with_partition(1, 2, 5, 10)
            .unwrap();
        assert_eq!(cfg.segments(), 3);
        assert_eq!(cfg.link_count(), 6);
        // Contiguous block placement.
        assert_eq!(cfg.segment_of(0, 9), 0);
        assert_eq!(cfg.segment_of(4, 9), 1);
        assert_eq!(cfg.segment_of(8, 9), 2);
        // Override lookup is symmetric; unconfigured pairs use the default.
        assert_eq!(cfg.link(2, 0).latency(), LatencyModel::Constant(9.0));
        assert_eq!(cfg.link(0, 2).latency(), LatencyModel::Constant(9.0));
        assert_eq!(cfg.link(0, 1).latency(), LatencyModel::Zero);
        // Partition windows are inclusive and symmetric.
        assert!(!cfg.is_partitioned(1, 2, 4));
        assert!(cfg.is_partitioned(2, 1, 5));
        assert!(cfg.is_partitioned(1, 2, 10));
        assert!(!cfg.is_partitioned(1, 2, 11));
        assert!(!cfg.is_partitioned(0, 1, 7));
        // Link indices are a dense bijection over unordered pairs.
        let cfg_ref = &cfg;
        let mut seen: Vec<usize> = (0..3)
            .flat_map(|a| (a..3).map(move |b| cfg_ref.link_index(a, b)))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // Validation.
        assert!(TransportConfig::default().with_segments(0).is_err());
        assert!(TransportConfig::default()
            .with_link(0, 1, LinkModel::reliable())
            .is_err());
        assert!(TransportConfig::default()
            .with_partition(0, 0, 5, 4)
            .is_err());
    }

    #[test]
    fn broker_orders_by_virtual_time_deterministically() {
        let cfg = TransportConfig::new(
            LinkModel::new(
                LatencyModel::Uniform {
                    min: 0.0,
                    max: 10.0,
                },
                0.0,
            )
            .unwrap(),
        );
        let run = |seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut t = InProcTransport::new(cfg.clone(), 100);
            for i in 0..50u32 {
                t.send(i, (i + 1) % 100, u64::from(i), 0.0, 0, &mut rng);
            }
            assert_eq!(t.queue_depth(), 50);
            let mut out = Vec::new();
            while let Some(d) = t.next_ready(f64::INFINITY) {
                out.push((d.deliver_at, d.payload));
            }
            out
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed replays bit-identically");
        // Sorted by delivery time.
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn broker_respects_the_until_horizon() {
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(5.0), 0.0).unwrap());
        let mut rng = Rng::seed_from(1);
        let mut t = InProcTransport::new(cfg, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        assert_eq!(t.next_time(), Some(5.0));
        assert!(
            t.next_ready(5.0).is_none(),
            "deliver_at == until stays queued"
        );
        let d = t.next_ready(5.1).unwrap();
        assert!(d.delivered);
        assert_eq!((d.src, d.dst), (0, 1));
        assert_eq!(d.deliver_at - d.sent_at, 5.0);
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.next_time(), None);
    }

    #[test]
    fn drops_and_partitions_resolve_as_timeouts() {
        // Drop probability 1: everything resolves undelivered.
        let lossy = TransportConfig::new(LinkModel::new(LatencyModel::Zero, 1.0).unwrap());
        let mut rng = Rng::seed_from(2);
        let mut t = InProcTransport::new(lossy, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        let d = t.next_ready(f64::INFINITY).unwrap();
        assert!(!d.delivered);
        assert_eq!(t.stats().dropped(), 1);

        // Partition window: cross-segment messages die during the window and
        // flow before/after it.
        let cfg = TransportConfig::new(LinkModel::reliable())
            .with_segments(2)
            .unwrap()
            .with_partition(0, 1, 3, 6)
            .unwrap();
        let mut t = InProcTransport::new(cfg, 10);
        // Process 0 is segment 0; process 9 is segment 1.
        t.send(0, 9, 0, 0.0, 2, &mut rng);
        t.send(0, 9, 1, 0.0, 3, &mut rng);
        t.send(0, 9, 2, 0.0, 6, &mut rng);
        t.send(0, 9, 3, 0.0, 7, &mut rng);
        // Intra-segment traffic ignores the partition.
        t.send(0, 1, 4, 0.0, 4, &mut rng);
        let mut fates = std::collections::HashMap::new();
        while let Some(d) = t.next_ready(f64::INFINITY) {
            fates.insert(d.payload, d.delivered);
        }
        assert!(fates[&0]);
        assert!(!fates[&1]);
        assert!(!fates[&2]);
        assert!(fates[&3]);
        assert!(fates[&4]);
    }

    #[test]
    fn stats_stream_counts_and_latencies() {
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(2.0), 0.5).unwrap());
        let mut rng = Rng::seed_from(3);
        let mut t = InProcTransport::new(cfg, 10);
        let stats = t.stats();
        for i in 0..1000u32 {
            t.send(i % 10, (i + 1) % 10, 0, 0.0, 0, &mut rng);
        }
        assert_eq!(stats.sent(), 1000);
        assert_eq!(stats.in_flight(), 1000);
        while t.next_ready(f64::INFINITY).is_some() {}
        assert_eq!(stats.in_flight(), 0);
        assert_eq!(stats.delivered() + stats.dropped(), 1000);
        // Half dropped, within 5σ ≈ 80.
        assert!(
            (stats.dropped() as f64 - 500.0).abs() < 80.0,
            "dropped {}",
            stats.dropped()
        );
        assert_eq!(stats.recent_latency_mean(), 2.0);
        assert_eq!(stats.recent_latency_max(), 2.0);
        assert_eq!(stats.link_count(), 1);
        let (sent, delivered, dropped) = stats.link_counts(0);
        assert_eq!(sent, 1000);
        assert_eq!(delivered + dropped, 1000);
        assert_eq!(stats.link_latency_mean(0), 2.0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.mean(), 0.0);
        for x in [1.0, 2.0, 3.0] {
            ring.push(x);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.mean(), 2.0);
        ring.push(10.0); // evicts 1.0
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.mean(), 5.0);
        assert_eq!(ring.max(), 10.0);
        assert_eq!(ring.total_pushed(), 4);
    }

    #[test]
    fn backoff_retry_timeout_policies_validate() {
        assert!(Backoff::new(0.0, 10.0).is_err());
        assert!(Backoff::new(5.0, 1.0).is_err());
        assert!(Backoff::new(f64::NAN, 1.0).is_err());
        let b = Backoff::new(0.5, 4.0).unwrap();
        assert_eq!((b.base(), b.cap()), (0.5, 4.0));
        let mut rng = Rng::seed_from(11);
        let mut prev = b.base();
        for _ in 0..200 {
            let d = b.next_delay(prev, &mut rng);
            assert!(
                (b.base()..=b.cap()).contains(&d),
                "delay {d} escaped [base, cap]"
            );
            prev = d;
        }
        assert!(RetryPolicy::new(0, b).is_err());
        let r = RetryPolicy::new(3, b).unwrap();
        assert_eq!(r.max_attempts(), 3);
        assert_eq!(r.backoff(), b);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
        assert!(TimeoutPolicy::after(0.0).is_err());
        assert!(TimeoutPolicy::after(f64::INFINITY).is_err());
        assert_eq!(TimeoutPolicy::after(2.0).unwrap().deadline(), Some(2.0));
        assert_eq!(TimeoutPolicy::none().deadline(), None);
        // Policy defaults are the historical single-shot behaviour.
        let cfg = TransportConfig::default();
        assert_eq!(cfg.retry(), RetryPolicy::none());
        assert_eq!(cfg.timeout(), TimeoutPolicy::none());
        assert_eq!(cfg.supervision(), None);
        assert_eq!(cfg.backend(), &TransportBackend::InProcess);
    }

    #[test]
    fn deadlines_time_out_and_retries_backoff() {
        // Latency 5 s against a 1 s deadline: both attempts expire, the
        // message resolves as a timeout after deadline + backoff + deadline.
        let backoff = Backoff::new(0.5, 2.0).unwrap();
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(5.0), 0.0).unwrap())
            .with_timeout(TimeoutPolicy::after(1.0).unwrap())
            .with_retry(RetryPolicy::new(2, backoff).unwrap());
        let mut rng = Rng::seed_from(5);
        let mut t = InProcTransport::new(cfg, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        let d = t.next_ready(f64::INFINITY).unwrap();
        assert!(!d.delivered, "no attempt can beat the deadline");
        let elapsed = d.deliver_at - d.sent_at;
        assert!(
            (2.5..=4.0).contains(&elapsed),
            "two deadlines plus one backoff delay, got {elapsed}"
        );
        assert_eq!(t.stats().timed_out(), 2);
        assert_eq!(t.stats().retries(), 1);

        // A latency inside the deadline is delivered on the first try.
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(5.0), 0.0).unwrap())
            .with_timeout(TimeoutPolicy::after(10.0).unwrap())
            .with_retry(RetryPolicy::new(3, backoff).unwrap());
        let mut t = InProcTransport::new(cfg, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        let d = t.next_ready(f64::INFINITY).unwrap();
        assert!(d.delivered);
        assert_eq!(d.deliver_at - d.sent_at, 5.0);
        assert_eq!(t.stats().timed_out(), 0);
        assert_eq!(t.stats().retries(), 0);

        // Total loss with three attempts: every attempt times out.
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Zero, 1.0).unwrap())
            .with_timeout(TimeoutPolicy::after(1.0).unwrap())
            .with_retry(RetryPolicy::new(3, backoff).unwrap());
        let mut t = InProcTransport::new(cfg, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        let d = t.next_ready(f64::INFINITY).unwrap();
        assert!(!d.delivered);
        assert_eq!(t.stats().timed_out(), 3);
        assert_eq!(t.stats().retries(), 2);
        // Retries can rescue a lossy link: with p = 0.5 and 4 attempts the
        // per-message failure rate drops to ~6 %.
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Zero, 0.5).unwrap())
            .with_timeout(TimeoutPolicy::after(1.0).unwrap())
            .with_retry(RetryPolicy::new(4, backoff).unwrap());
        let mut t = InProcTransport::new(cfg, 10);
        for i in 0..500u32 {
            t.send(i % 10, (i + 1) % 10, 0, 0.0, 0, &mut rng);
        }
        let mut ok = 0;
        while let Some(d) = t.next_ready(f64::INFINITY) {
            ok += u32::from(d.delivered);
        }
        assert!(ok > 440, "retries should rescue most messages, got {ok}");
    }

    fn uds_config(segments: usize) -> TransportConfig {
        let launcher = crate::supervise::WorkerLauncher::CurrentExeTest(
            "supervise::tests::worker_entry".into(),
        );
        TransportConfig::new(
            LinkModel::new(
                LatencyModel::Uniform {
                    min: 0.0,
                    max: 10.0,
                },
                0.2,
            )
            .unwrap(),
        )
        .with_segments(segments)
        .unwrap()
        .with_backend(TransportBackend::UnixSocket(
            crate::supervise::SocketConfig::new(launcher),
        ))
    }

    #[test]
    fn uds_transport_replays_the_inproc_broker_bit_for_bit() {
        let n = 10;
        let drain = |t: &mut dyn Transport, rng: &mut Rng| {
            for i in 0..40u32 {
                t.send(
                    i % 10,
                    (i + 3) % 10,
                    u64::from(i),
                    f64::from(i) * 0.1,
                    0,
                    rng,
                );
            }
            let mut out = Vec::new();
            while let Some(d) = t.next_ready(f64::INFINITY) {
                out.push(d);
            }
            out
        };
        let mut rng = Rng::seed_from(42);
        let mut inproc = InProcTransport::new(uds_config(2), n);
        let expect = drain(&mut inproc, &mut rng);

        let mut rng = Rng::seed_from(42);
        let mut uds = UdsTransport::new(uds_config(2), n).expect("spawn socket transport");
        let got = drain(&mut uds, &mut rng);
        assert_eq!(
            got, expect,
            "healthy workers replay the virtual broker exactly"
        );
        assert!(!uds.is_parked(0) && !uds.is_parked(1));
        assert_eq!(uds.stats().timed_out(), 0);
    }

    #[test]
    fn killed_segment_parks_and_times_out_instead_of_hanging() {
        let n = 10;
        let mut rng = Rng::seed_from(9);
        let cfg = uds_config(2);
        // Zero loss so every virtual fate is "delivered".
        let cfg = TransportConfig::new(LinkModel::reliable())
            .with_segments(2)
            .unwrap()
            .with_backend(cfg.backend().clone());
        let mut uds = UdsTransport::new(cfg, n).expect("spawn socket transport");

        // Real process death: the segment parks, messages to it resolve as
        // timeouts, and the other segment is untouched.
        uds.kill_segment(1);
        assert!(uds.is_parked(1));
        uds.send(0, 9, 7, 0.0, 0, &mut rng); // process 9 lives in segment 1
        uds.send(0, 1, 8, 0.0, 0, &mut rng); // process 1 lives in segment 0
        let mut fates = std::collections::HashMap::new();
        while let Some(d) = uds.next_ready(f64::INFINITY) {
            fates.insert(d.payload, d.delivered);
        }
        assert!(!fates[&7], "message into the dead segment times out");
        assert!(fates[&8], "the healthy segment still delivers");
        assert!(uds.stats().timed_out() >= 1);

        // Revival restarts the worker and the segment delivers again.
        uds.revive_segment(1).expect("respawn worker");
        assert!(!uds.is_parked(1));
        assert!(uds.supervisor().restarts(1) >= 1);
        uds.send(0, 9, 11, 0.0, 0, &mut rng);
        let d = uds.next_ready(f64::INFINITY).unwrap();
        assert!(d.delivered, "revived segment delivers");
    }

    #[test]
    fn stats_survive_eight_hammering_writers_with_a_live_reader() {
        let stats = Arc::new(TransportStats::new(1));
        const WRITERS: usize = 8;
        const OPS: u64 = 20_000;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let stats = Arc::clone(&stats);
                scope.spawn(move || {
                    for i in 0..OPS {
                        stats.on_send(0);
                        let delivered = (i + w as u64) % 3 != 0;
                        // Latencies stay inside [0, 1]: any torn read would
                        // show up as a mean or max outside that envelope.
                        let latency = (i % 1000) as f64 / 1000.0;
                        stats.on_resolve(0, delivered, latency);
                        if i % 64 == 0 {
                            stats.on_timeout();
                            stats.on_retry();
                        }
                    }
                });
            }
            let reader_stats = Arc::clone(&stats);
            let reader_stop = Arc::clone(&stop);
            let reader = scope.spawn(move || {
                let (mut sent, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
                let (mut timed_out, mut retries) = (0u64, 0u64);
                let mut polls = 0u64;
                while !reader_stop.load(MemOrdering::Relaxed) {
                    let s = reader_stats.sent();
                    let d = reader_stats.delivered();
                    let x = reader_stats.dropped();
                    let t = reader_stats.timed_out();
                    let r = reader_stats.retries();
                    assert!(s >= sent && d >= delivered && x >= dropped);
                    assert!(t >= timed_out && r >= retries);
                    (sent, delivered, dropped, timed_out, retries) = (s, d, x, t, r);
                    let mean = reader_stats.recent_latency_mean();
                    let max = reader_stats.recent_latency_max();
                    assert!((0.0..=1.0).contains(&mean), "torn mean {mean}");
                    assert!((0.0..=1.0).contains(&max), "torn max {max}");
                    assert!(mean <= max + 1e-12);
                    polls += 1;
                }
                polls
            });
            // The scope joins writers automatically, but the reader needs an
            // explicit stop once the writers are done; re-spawn ordering in
            // `scope` means we must wait via a side channel instead of
            // joining writer handles here. Simplest: poll the final count.
            while stats.sent() < (WRITERS as u64) * OPS {
                std::thread::yield_now();
            }
            stop.store(true, MemOrdering::Relaxed);
            assert!(reader.join().expect("reader thread") > 0);
        });
        assert_eq!(stats.sent(), WRITERS as u64 * OPS);
        assert_eq!(stats.delivered() + stats.dropped(), WRITERS as u64 * OPS);
        assert_eq!(stats.in_flight(), 0);
        assert_eq!(stats.timed_out(), WRITERS as u64 * (OPS / 64 + 1));
        assert_eq!(stats.retries(), stats.timed_out());
        assert_eq!(stats.link_counts(0).0, WRITERS as u64 * OPS);
    }

    #[test]
    fn stats_are_readable_from_another_thread() {
        let cfg = TransportConfig::new(LinkModel::reliable());
        let mut rng = Rng::seed_from(4);
        let mut t = InProcTransport::new(cfg, 10);
        let stats = t.stats();
        std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                // Spin until the writer's sends become visible.
                loop {
                    let seen = stats.sent();
                    if seen >= 100 {
                        return seen;
                    }
                    std::thread::yield_now();
                }
            });
            for i in 0..100u32 {
                t.send(i % 10, (i + 3) % 10, 0, 0.0, 0, &mut rng);
            }
            assert!(reader.join().expect("reader thread") >= 100);
        });
    }
}
