//! Message transport: per-link latency, drops, partitions, and an
//! in-process broker with streaming delivery statistics.
//!
//! Everything else in `netsim` advances in synchronized protocol periods;
//! this module is the substrate for *asynchronous* execution, where each
//! protocol contact is an actual message that is sent, queued, delayed by a
//! sampled per-link latency, and finally delivered or dropped. The design
//! notes live here (the ROADMAP points at this module):
//!
//! * **Links are segment pairs.** Modelling `N²` per-process links would be
//!   both unaffordable and unidentifiable; instead the population is split
//!   into `segments` contiguous index blocks and every (ordered-free) segment
//!   pair is one link with its own [`LinkModel`] — latency distribution plus
//!   drop probability — falling back to a configurable default. One segment
//!   (the default) degenerates to a single uniform link, the paper's
//!   well-mixed medium.
//! * **Partitions are period windows.** A [`LinkPartition`] blocks every
//!   message between two segments for an inclusive period window, mirroring
//!   [`ShardPartition`](crate::topology::ShardPartition) but at the message
//!   layer: sends during the window are queued and resolved as timeouts, so
//!   the sender still pays the latency before learning nothing came back.
//! * **The broker is a virtual-time queue.** [`InProcTransport`] keeps
//!   messages in a binary heap ordered by `(deliver_at, sequence)`; ties are
//!   impossible by construction, so a seeded run replays **bit-identically**.
//!   The [`Transport`] trait is the seam for socket-shaped implementations
//!   later — the consuming runtime only sees `send` / `next_ready`.
//! * **Statistics stream while the run executes.** Every send/delivery/drop
//!   updates an [`Arc`]-shared [`TransportStats`] (atomic counters plus a
//!   bounded [`RingBuffer`] of recent per-link delivery latencies), so an
//!   observer — or another thread — can read queue depth, latency and drop
//!   counts mid-run instead of waiting for post-hoc recorders.

use crate::error::{check_probability, SimError};
use crate::rng::Rng;
use crate::Result;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::{Arc, Mutex};

/// Per-message delivery latency distribution, in seconds of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Instant delivery (the synchronous limit).
    Zero,
    /// Every message takes exactly this many seconds.
    Constant(f64),
    /// Uniform in `[min, max]` seconds.
    Uniform {
        /// Lower bound (seconds).
        min: f64,
        /// Upper bound (seconds).
        max: f64,
    },
    /// Exponential with the given mean in seconds (the classic M/M queueing
    /// assumption; heavy enough a tail to exercise out-of-order delivery).
    Exponential {
        /// Mean latency (seconds).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one delivery latency.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(secs) => secs,
            LatencyModel::Uniform { min, max } => rng.uniform(min, max),
            LatencyModel::Exponential { mean } => {
                // Inverse CDF; guard the u = 1 endpoint of `next_f64`.
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
        }
    }

    /// The distribution's mean, in seconds.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Constant(secs) => secs,
            LatencyModel::Uniform { min, max } => 0.5 * (min + max),
            LatencyModel::Exponential { mean } => mean,
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = match *self {
            LatencyModel::Zero => true,
            LatencyModel::Constant(secs) => secs.is_finite() && secs >= 0.0,
            LatencyModel::Uniform { min, max } => {
                min.is_finite() && max.is_finite() && 0.0 <= min && min <= max
            }
            LatencyModel::Exponential { mean } => mean.is_finite() && mean >= 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::InvalidConfig {
                name: "latency",
                reason: format!("latency model {self:?} is not a valid non-negative distribution"),
            })
        }
    }
}

/// The behaviour of one link: how long messages take and how often they are
/// lost. A link connects two population segments (or a segment to itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    latency: LatencyModel,
    drop_prob: f64,
}

impl LinkModel {
    /// A perfect link: zero latency, no drops.
    pub fn reliable() -> Self {
        LinkModel {
            latency: LatencyModel::Zero,
            drop_prob: 0.0,
        }
    }

    /// Creates a link model.
    ///
    /// # Errors
    ///
    /// Returns an error if the latency distribution is invalid or the drop
    /// probability lies outside `[0, 1]`.
    pub fn new(latency: LatencyModel, drop_prob: f64) -> Result<Self> {
        latency.validate()?;
        check_probability("drop_prob", drop_prob)?;
        Ok(LinkModel { latency, drop_prob })
    }

    /// The latency distribution.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

/// A partition window between two segments: every message between them sent
/// during the inclusive period window `from_period ..= to_period` is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// One side of the partitioned link.
    pub a: usize,
    /// The other side (`a == b` partitions a segment from itself).
    pub b: usize,
    /// First period of the window (inclusive).
    pub from_period: u64,
    /// Last period of the window (inclusive).
    pub to_period: u64,
}

impl LinkPartition {
    /// `true` if the partition is in force at `period`.
    pub fn active_at(&self, period: u64) -> bool {
        (self.from_period..=self.to_period).contains(&period)
    }
}

/// Everything a scenario needs to say about its message transport: the
/// segment count, the default link, per-segment-pair overrides and partition
/// windows. Attaching one to a [`Scenario`](crate::Scenario) (via
/// [`Scenario::with_transport`](crate::Scenario::with_transport)) is what
/// routes a run onto the asynchronous message-passing tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    segments: usize,
    default_link: LinkModel,
    overrides: Vec<(usize, usize, LinkModel)>,
    partitions: Vec<LinkPartition>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::new(LinkModel::reliable())
    }
}

impl TransportConfig {
    /// One segment, every message on `default_link`.
    pub fn new(default_link: LinkModel) -> Self {
        TransportConfig {
            segments: 1,
            default_link,
            overrides: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Splits the population into `segments` contiguous index blocks; every
    /// segment pair becomes a distinct link.
    ///
    /// # Errors
    ///
    /// Returns an error if `segments` is zero.
    pub fn with_segments(mut self, segments: usize) -> Result<Self> {
        if segments == 0 {
            return Err(SimError::InvalidConfig {
                name: "segments",
                reason: "transport needs at least one segment".into(),
            });
        }
        self.segments = segments;
        Ok(self)
    }

    /// Overrides the link model between segments `a` and `b` (symmetric;
    /// `a == b` sets the segment's internal link).
    ///
    /// # Errors
    ///
    /// Returns an error if either segment index is out of range.
    pub fn with_link(mut self, a: usize, b: usize, model: LinkModel) -> Result<Self> {
        self.check_segment(a)?;
        self.check_segment(b)?;
        self.overrides.push((a.min(b), a.max(b), model));
        Ok(self)
    }

    /// Partitions the link between segments `a` and `b` for the inclusive
    /// period window `from_period ..= to_period`.
    ///
    /// # Errors
    ///
    /// Returns an error if a segment index is out of range or the window is
    /// empty (`from_period > to_period`).
    pub fn with_partition(
        mut self,
        a: usize,
        b: usize,
        from_period: u64,
        to_period: u64,
    ) -> Result<Self> {
        self.check_segment(a)?;
        self.check_segment(b)?;
        if from_period > to_period {
            return Err(SimError::InvalidConfig {
                name: "link_partition",
                reason: format!("window {from_period}..={to_period} is empty"),
            });
        }
        self.partitions.push(LinkPartition {
            a: a.min(b),
            b: a.max(b),
            from_period,
            to_period,
        });
        Ok(self)
    }

    fn check_segment(&self, segment: usize) -> Result<()> {
        if segment >= self.segments {
            return Err(SimError::InvalidConfig {
                name: "segment",
                reason: format!(
                    "segment {segment} out of range for {} segments",
                    self.segments
                ),
            });
        }
        Ok(())
    }

    /// The number of population segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The link model used by every pair without an override.
    pub fn default_link(&self) -> LinkModel {
        self.default_link
    }

    /// The partition windows.
    pub fn partitions(&self) -> &[LinkPartition] {
        &self.partitions
    }

    /// The segment of process index `p` in a population of `n`: contiguous
    /// near-equal blocks, matching how experiments place initial states.
    pub fn segment_of(&self, p: usize, n: usize) -> usize {
        debug_assert!(p < n);
        (p * self.segments) / n
    }

    /// The effective link model between two segments (last override wins).
    pub fn link(&self, a: usize, b: usize) -> LinkModel {
        let (lo, hi) = (a.min(b), a.max(b));
        self.overrides
            .iter()
            .rev()
            .find(|(oa, ob, _)| (*oa, *ob) == (lo, hi))
            .map(|(_, _, m)| *m)
            .unwrap_or(self.default_link)
    }

    /// `true` if the link between two segments is partitioned at `period`.
    pub fn is_partitioned(&self, a: usize, b: usize, period: u64) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        self.partitions
            .iter()
            .any(|p| (p.a, p.b) == (lo, hi) && p.active_at(period))
    }

    /// Number of distinct links (unordered segment pairs, including each
    /// segment's internal link) — the size of the per-link statistics table.
    pub fn link_count(&self) -> usize {
        self.segments * (self.segments + 1) / 2
    }

    /// Dense index of the link between two segments, for per-link counters.
    pub fn link_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        // Row `lo` of the upper triangle starts after lo rows of decreasing
        // length: Σ_{r<lo} (segments - r).
        lo * self.segments - lo * (lo + 1) / 2 + lo + (hi - lo)
    }
}

/// A message handed back by [`Transport::next_ready`]. `delivered == false`
/// means the message was dropped or partitioned: the event still resolves at
/// `deliver_at` (the sender's timeout), but carries no response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Sender process index.
    pub src: u32,
    /// Receiver process index.
    pub dst: u32,
    /// Opaque payload (the consuming runtime encodes its action bookkeeping
    /// here; the transport never interprets it).
    pub payload: u64,
    /// Virtual send time (seconds).
    pub sent_at: f64,
    /// Virtual resolution time (seconds).
    pub deliver_at: f64,
    /// `false` if the message was dropped by loss or a partition window.
    pub delivered: bool,
}

/// The message-passing seam between a runtime and the medium. The in-process
/// broker ([`InProcTransport`]) is the only implementation today; the trait
/// is the shape a socket-backed transport plugs into later (send side
/// unchanged, `next_ready` fed by a reader thread).
pub trait Transport {
    /// Queues a message from `src` to `dst` at virtual time `now` (during
    /// `period`), sampling the link's latency and drop fate from `rng`.
    /// Returns the resolution time.
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64;

    /// Pops the earliest message with `deliver_at < until`, if any.
    fn next_ready(&mut self, until: f64) -> Option<Delivery>;

    /// The resolution time of the earliest queued message.
    fn next_time(&self) -> Option<f64>;

    /// Number of messages currently in flight.
    fn queue_depth(&self) -> usize;
}

/// Heap entry: min-ordered by `(deliver_at, seq)`. The sequence number makes
/// the order total and deterministic even when two messages resolve at the
/// same instant (e.g. two zero-latency probes from one action).
#[derive(Debug, Clone, Copy)]
struct Queued {
    deliver_at: f64,
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest message.
        other
            .deliver_at
            .total_cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The in-process broker: a virtual-time priority queue plus shared
/// statistics. Single-threaded by design (the consuming runtime owns it);
/// the [`TransportStats`] handle is what crosses threads.
#[derive(Debug)]
pub struct InProcTransport {
    config: TransportConfig,
    n: usize,
    queue: BinaryHeap<Queued>,
    seq: u64,
    stats: Arc<TransportStats>,
}

impl InProcTransport {
    /// Creates a broker for a population of `n` processes.
    pub fn new(config: TransportConfig, n: usize) -> Self {
        let stats = Arc::new(TransportStats::new(config.link_count()));
        InProcTransport {
            config,
            n,
            queue: BinaryHeap::new(),
            seq: 0,
            stats,
        }
    }

    /// The transport configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// A cloneable, thread-safe handle onto the live statistics.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }
}

impl Transport for InProcTransport {
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64 {
        let sa = self.config.segment_of(src as usize, self.n);
        let sb = self.config.segment_of(dst as usize, self.n);
        let link = self.config.link(sa, sb);
        let latency = link.latency().sample(rng);
        let partitioned = self.config.is_partitioned(sa, sb, period);
        let delivered = !partitioned && !rng.chance(link.drop_prob());
        let deliver_at = now + latency;
        self.seq += 1;
        self.queue.push(Queued {
            deliver_at,
            seq: self.seq,
            delivery: Delivery {
                src,
                dst,
                payload,
                sent_at: now,
                deliver_at,
                delivered,
            },
        });
        self.stats.on_send(self.config.link_index(sa, sb));
        deliver_at
    }

    fn next_ready(&mut self, until: f64) -> Option<Delivery> {
        if self.queue.peek()?.deliver_at >= until {
            return None;
        }
        let queued = self.queue.pop()?;
        let d = queued.delivery;
        let sa = self.config.segment_of(d.src as usize, self.n);
        let sb = self.config.segment_of(d.dst as usize, self.n);
        self.stats.on_resolve(
            self.config.link_index(sa, sb),
            d.delivered,
            d.deliver_at - d.sent_at,
        );
        Some(d)
    }

    fn next_time(&self) -> Option<f64> {
        self.queue.peek().map(|q| q.deliver_at)
    }

    fn queue_depth(&self) -> usize {
        self.queue.len()
    }
}

/// A bounded ring of recent samples — the streaming window behind the
/// per-link latency statistics (old samples are overwritten, so memory stays
/// constant however long the run is).
#[derive(Debug, Clone)]
pub struct RingBuffer {
    samples: Vec<f64>,
    capacity: usize,
    next: usize,
    total_pushed: u64,
}

impl RingBuffer {
    /// Creates a ring holding up to `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            samples: Vec::with_capacity(capacity.min(64)),
            capacity: capacity.max(1),
            next: 0,
            total_pushed: 0,
        }
    }

    /// Adds a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_pushed += 1;
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Mean of the samples in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum of the samples in the window (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Per-link message counters.
#[derive(Debug, Default)]
struct LinkCounters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// Live transport statistics, shared between the broker (writer) and any
/// number of reader threads: global and per-link sent/delivered/dropped
/// counters plus ring buffers of recent delivery latencies. All reads are
/// wait-free except the latency windows (one short mutex).
#[derive(Debug)]
pub struct TransportStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    links: Vec<LinkCounters>,
    latencies: Mutex<RingBuffer>,
    link_latencies: Vec<Mutex<RingBuffer>>,
}

/// Capacity of the streaming latency windows.
const LATENCY_WINDOW: usize = 1024;

impl TransportStats {
    fn new(link_count: usize) -> Self {
        TransportStats {
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            links: (0..link_count).map(|_| LinkCounters::default()).collect(),
            latencies: Mutex::new(RingBuffer::new(LATENCY_WINDOW)),
            link_latencies: (0..link_count)
                .map(|_| Mutex::new(RingBuffer::new(LATENCY_WINDOW)))
                .collect(),
        }
    }

    fn on_send(&self, link: usize) {
        self.sent.fetch_add(1, MemOrdering::Relaxed);
        self.links[link].sent.fetch_add(1, MemOrdering::Relaxed);
    }

    fn on_resolve(&self, link: usize, delivered: bool, latency: f64) {
        if delivered {
            self.delivered.fetch_add(1, MemOrdering::Relaxed);
            self.links[link]
                .delivered
                .fetch_add(1, MemOrdering::Relaxed);
            self.latencies.lock().expect("stats lock").push(latency);
            self.link_latencies[link]
                .lock()
                .expect("stats lock")
                .push(latency);
        } else {
            self.dropped.fetch_add(1, MemOrdering::Relaxed);
            self.links[link].dropped.fetch_add(1, MemOrdering::Relaxed);
        }
    }

    /// Total messages ever sent.
    pub fn sent(&self) -> u64 {
        self.sent.load(MemOrdering::Relaxed)
    }

    /// Total messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(MemOrdering::Relaxed)
    }

    /// Total messages dropped (loss or partition).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(MemOrdering::Relaxed)
    }

    /// Messages currently in flight (sent but not yet resolved).
    pub fn in_flight(&self) -> u64 {
        self.sent() - self.delivered() - self.dropped()
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `(sent, delivered, dropped)` for one link index (see
    /// [`TransportConfig::link_index`]).
    pub fn link_counts(&self, link: usize) -> (u64, u64, u64) {
        let l = &self.links[link];
        (
            l.sent.load(MemOrdering::Relaxed),
            l.delivered.load(MemOrdering::Relaxed),
            l.dropped.load(MemOrdering::Relaxed),
        )
    }

    /// Mean delivery latency over the recent window (seconds; 0 if nothing
    /// was delivered yet).
    pub fn recent_latency_mean(&self) -> f64 {
        self.latencies.lock().expect("stats lock").mean()
    }

    /// Maximum delivery latency over the recent window (seconds).
    pub fn recent_latency_max(&self) -> f64 {
        self.latencies.lock().expect("stats lock").max()
    }

    /// Mean delivery latency of one link over its recent window (seconds).
    pub fn link_latency_mean(&self, link: usize) -> f64 {
        self.link_latencies[link].lock().expect("stats lock").mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_models_sample_and_validate() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), 0.0);
        assert_eq!(LatencyModel::Constant(3.0).sample(&mut rng), 3.0);
        for _ in 0..100 {
            let u = LatencyModel::Uniform { min: 1.0, max: 2.0 }.sample(&mut rng);
            assert!((1.0..=2.0).contains(&u));
            let e = LatencyModel::Exponential { mean: 5.0 }.sample(&mut rng);
            assert!(e >= 0.0);
        }
        // Empirical mean of the exponential tracks its parameter.
        let mean = (0..20_000)
            .map(|_| LatencyModel::Exponential { mean: 5.0 }.sample(&mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert_eq!(LatencyModel::Uniform { min: 0.0, max: 4.0 }.mean(), 2.0);
        // Invalid models are rejected through LinkModel::new.
        assert!(LinkModel::new(LatencyModel::Constant(-1.0), 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Uniform { min: 2.0, max: 1.0 }, 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Exponential { mean: f64::NAN }, 0.0).is_err());
        assert!(LinkModel::new(LatencyModel::Zero, 1.5).is_err());
        let link = LinkModel::new(LatencyModel::Constant(2.0), 0.25).unwrap();
        assert_eq!(link.latency(), LatencyModel::Constant(2.0));
        assert_eq!(link.drop_prob(), 0.25);
    }

    #[test]
    fn config_segments_links_and_partitions() {
        let cfg = TransportConfig::new(LinkModel::reliable())
            .with_segments(3)
            .unwrap()
            .with_link(
                0,
                2,
                LinkModel::new(LatencyModel::Constant(9.0), 0.0).unwrap(),
            )
            .unwrap()
            .with_partition(1, 2, 5, 10)
            .unwrap();
        assert_eq!(cfg.segments(), 3);
        assert_eq!(cfg.link_count(), 6);
        // Contiguous block placement.
        assert_eq!(cfg.segment_of(0, 9), 0);
        assert_eq!(cfg.segment_of(4, 9), 1);
        assert_eq!(cfg.segment_of(8, 9), 2);
        // Override lookup is symmetric; unconfigured pairs use the default.
        assert_eq!(cfg.link(2, 0).latency(), LatencyModel::Constant(9.0));
        assert_eq!(cfg.link(0, 2).latency(), LatencyModel::Constant(9.0));
        assert_eq!(cfg.link(0, 1).latency(), LatencyModel::Zero);
        // Partition windows are inclusive and symmetric.
        assert!(!cfg.is_partitioned(1, 2, 4));
        assert!(cfg.is_partitioned(2, 1, 5));
        assert!(cfg.is_partitioned(1, 2, 10));
        assert!(!cfg.is_partitioned(1, 2, 11));
        assert!(!cfg.is_partitioned(0, 1, 7));
        // Link indices are a dense bijection over unordered pairs.
        let cfg_ref = &cfg;
        let mut seen: Vec<usize> = (0..3)
            .flat_map(|a| (a..3).map(move |b| cfg_ref.link_index(a, b)))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // Validation.
        assert!(TransportConfig::default().with_segments(0).is_err());
        assert!(TransportConfig::default()
            .with_link(0, 1, LinkModel::reliable())
            .is_err());
        assert!(TransportConfig::default()
            .with_partition(0, 0, 5, 4)
            .is_err());
    }

    #[test]
    fn broker_orders_by_virtual_time_deterministically() {
        let cfg = TransportConfig::new(
            LinkModel::new(
                LatencyModel::Uniform {
                    min: 0.0,
                    max: 10.0,
                },
                0.0,
            )
            .unwrap(),
        );
        let run = |seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut t = InProcTransport::new(cfg.clone(), 100);
            for i in 0..50u32 {
                t.send(i, (i + 1) % 100, u64::from(i), 0.0, 0, &mut rng);
            }
            assert_eq!(t.queue_depth(), 50);
            let mut out = Vec::new();
            while let Some(d) = t.next_ready(f64::INFINITY) {
                out.push((d.deliver_at, d.payload));
            }
            out
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed replays bit-identically");
        // Sorted by delivery time.
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn broker_respects_the_until_horizon() {
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(5.0), 0.0).unwrap());
        let mut rng = Rng::seed_from(1);
        let mut t = InProcTransport::new(cfg, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        assert_eq!(t.next_time(), Some(5.0));
        assert!(
            t.next_ready(5.0).is_none(),
            "deliver_at == until stays queued"
        );
        let d = t.next_ready(5.1).unwrap();
        assert!(d.delivered);
        assert_eq!((d.src, d.dst), (0, 1));
        assert_eq!(d.deliver_at - d.sent_at, 5.0);
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.next_time(), None);
    }

    #[test]
    fn drops_and_partitions_resolve_as_timeouts() {
        // Drop probability 1: everything resolves undelivered.
        let lossy = TransportConfig::new(LinkModel::new(LatencyModel::Zero, 1.0).unwrap());
        let mut rng = Rng::seed_from(2);
        let mut t = InProcTransport::new(lossy, 10);
        t.send(0, 1, 0, 0.0, 0, &mut rng);
        let d = t.next_ready(f64::INFINITY).unwrap();
        assert!(!d.delivered);
        assert_eq!(t.stats().dropped(), 1);

        // Partition window: cross-segment messages die during the window and
        // flow before/after it.
        let cfg = TransportConfig::new(LinkModel::reliable())
            .with_segments(2)
            .unwrap()
            .with_partition(0, 1, 3, 6)
            .unwrap();
        let mut t = InProcTransport::new(cfg, 10);
        // Process 0 is segment 0; process 9 is segment 1.
        t.send(0, 9, 0, 0.0, 2, &mut rng);
        t.send(0, 9, 1, 0.0, 3, &mut rng);
        t.send(0, 9, 2, 0.0, 6, &mut rng);
        t.send(0, 9, 3, 0.0, 7, &mut rng);
        // Intra-segment traffic ignores the partition.
        t.send(0, 1, 4, 0.0, 4, &mut rng);
        let mut fates = std::collections::HashMap::new();
        while let Some(d) = t.next_ready(f64::INFINITY) {
            fates.insert(d.payload, d.delivered);
        }
        assert!(fates[&0]);
        assert!(!fates[&1]);
        assert!(!fates[&2]);
        assert!(fates[&3]);
        assert!(fates[&4]);
    }

    #[test]
    fn stats_stream_counts_and_latencies() {
        let cfg = TransportConfig::new(LinkModel::new(LatencyModel::Constant(2.0), 0.5).unwrap());
        let mut rng = Rng::seed_from(3);
        let mut t = InProcTransport::new(cfg, 10);
        let stats = t.stats();
        for i in 0..1000u32 {
            t.send(i % 10, (i + 1) % 10, 0, 0.0, 0, &mut rng);
        }
        assert_eq!(stats.sent(), 1000);
        assert_eq!(stats.in_flight(), 1000);
        while t.next_ready(f64::INFINITY).is_some() {}
        assert_eq!(stats.in_flight(), 0);
        assert_eq!(stats.delivered() + stats.dropped(), 1000);
        // Half dropped, within 5σ ≈ 80.
        assert!(
            (stats.dropped() as f64 - 500.0).abs() < 80.0,
            "dropped {}",
            stats.dropped()
        );
        assert_eq!(stats.recent_latency_mean(), 2.0);
        assert_eq!(stats.recent_latency_max(), 2.0);
        assert_eq!(stats.link_count(), 1);
        let (sent, delivered, dropped) = stats.link_counts(0);
        assert_eq!(sent, 1000);
        assert_eq!(delivered + dropped, 1000);
        assert_eq!(stats.link_latency_mean(0), 2.0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.mean(), 0.0);
        for x in [1.0, 2.0, 3.0] {
            ring.push(x);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.mean(), 2.0);
        ring.push(10.0); // evicts 1.0
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.mean(), 5.0);
        assert_eq!(ring.max(), 10.0);
        assert_eq!(ring.total_pushed(), 4);
    }

    #[test]
    fn stats_are_readable_from_another_thread() {
        let cfg = TransportConfig::new(LinkModel::reliable());
        let mut rng = Rng::seed_from(4);
        let mut t = InProcTransport::new(cfg, 10);
        let stats = t.stats();
        std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                // Spin until the writer's sends become visible.
                loop {
                    let seen = stats.sent();
                    if seen >= 100 {
                        return seen;
                    }
                    std::thread::yield_now();
                }
            });
            for i in 0..100u32 {
                t.send(i % 10, (i + 3) % 10, 0, 0.0, 0, &mut rng);
            }
            assert!(reader.join().expect("reader thread") >= 100);
        });
    }
}
