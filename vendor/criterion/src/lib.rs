//! Offline stand-in for the Criterion.rs benchmark harness.
//!
//! Implements the subset of the criterion API that the `dpde-bench`
//! benches use, backed by a simple wall-clock measurement loop:
//!
//! * [`Criterion`] with [`Criterion::sample_size`], [`Criterion::bench_function`]
//!   and [`Criterion::benchmark_group`];
//! * [`BenchmarkGroup`] with `bench_function`, `bench_with_input`,
//!   `throughput` and `finish`;
//! * [`Bencher::iter`] and [`Bencher::iter_batched`];
//! * [`BenchmarkId`], [`Throughput`], [`BatchSize`];
//! * [`criterion_group!`] (both the list and the `name =` / `config =` /
//!   `targets =` forms) and [`criterion_main!`].
//!
//! Each benchmark runs one warm-up iteration and then up to `sample_size`
//! timed iterations, capped by a per-benchmark time budget, and prints a
//! `name  mean <t>  (<n> iters)` line. Results are also appended as JSON
//! lines to the file named by `DPDE_BENCH_JSON` when that variable is set,
//! so driver scripts can collect `BENCH_*.json` baselines.
//!
//! The harness honours the first free (non-flag) CLI argument as a
//! substring filter on benchmark names, and ignores the flags cargo and
//! criterion conventionally pass (`--bench`, `--verbose`, ...), so
//! `cargo bench <filter>` behaves as expected.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget for the measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the target number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().full_name;
        run_one(&name, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the amount of work per iteration (accepted, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().full_name);
        let (samples, filter) = (self.criterion.sample_size, self.criterion.filter.as_deref());
        run_one(&name, samples, filter, f);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized by an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full_name: String,
}

impl BenchmarkId {
    /// A benchmark id `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full_name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full_name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            full_name: name.to_owned(),
        }
    }
}

impl From<&String> for BenchmarkId {
    fn from(name: &String) -> Self {
        BenchmarkId {
            full_name: name.clone(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full_name: name }
    }
}

/// The per-iteration work metric of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing strategy for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also acts as the compile/correctness check).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
            self.iters += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let loop_start = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if loop_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, filter: Option<&str>, mut f: F) {
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!("{name:<60} mean {mean:>12.3?}  ({} iters)", bencher.iters);
    if let Ok(path) = std::env::var("DPDE_BENCH_JSON") {
        let line = format!(
            "{{\"name\":\"{}\",\"mean_ns\":{},\"iters\":{}}}\n",
            name.replace('"', "'"),
            mean.as_nanos(),
            bencher.iters
        );
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            use std::io::Write as _;
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Defines a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the benchmark `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iters() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| calls += 1));
        // One warm-up plus up to three timed iterations.
        assert!(calls >= 2);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("match".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut hit = false;
        group.bench_with_input(BenchmarkId::new("match", 7), &7, |b, &x| {
            b.iter(|| x + 1);
            hit = true;
        });
        let mut missed = false;
        group.bench_function("other", |b| {
            b.iter(|| 1);
            missed = true;
        });
        group.finish();
        assert!(hit);
        assert!(!missed, "filter should skip non-matching benchmarks");
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher {
            samples: 2,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }
}
