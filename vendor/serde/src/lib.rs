//! Offline stand-in for the `serde` derive macros.
//!
//! The workspace gates every serde derive behind the `serde` cargo feature:
//!
//! ```ignore
//! #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
//! pub struct SummaryStats { /* ... */ }
//! ```
//!
//! In an offline build the real serde cannot be resolved, so this
//! proc-macro crate supplies `Serialize` / `Deserialize` derives that
//! expand to an empty token stream: the attribute compiles, and no trait
//! impls (or trait definitions) are required. Replace the `vendor/serde`
//! path dependency with the real crates.io serde to get functional
//! serialization; no source changes are needed in the member crates.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
