//! Offline stand-in for the proptest property-testing framework.
//!
//! Implements the subset of the proptest API that the workspace's
//! property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map), implemented for numeric
//!   [`Range`](std::ops::Range)s and for tuples of strategies;
//! * [`any`]`::<bool>()`;
//! * [`collection::vec`] with `Range` / `RangeInclusive` size bounds;
//! * [`ProptestConfig`] with [`ProptestConfig::with_cases`];
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Inputs are drawn from a deterministic splitmix64 stream seeded from the
//! test name, so failures reproduce across runs. Unlike the real
//! proptest there is **no shrinking** and no persisted failure regression
//! file: a failing case panics with the case number via the standard
//! assert machinery. Swap the `vendor/proptest` path dependency for the
//! real crates.io proptest to get shrinking back; the test sources are
//! source-compatible.

pub mod test_runner {
    //! The deterministic random stream driving input generation.

    /// A splitmix64 generator: tiny, seedable and statistically fine for
    /// drawing test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (the test name).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a, so the seed is stable across runs and platforms.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the deterministic stream.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty integer range strategy");
                    let span = (end - start) as u64;
                    start + rng.below(span.saturating_add(1).max(1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    /// The strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;

        fn new_value(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// A fixed value, generated as-is every time (proptest's `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Generates arbitrary values of `T` (only the instantiations the
/// workspace's tests need are implemented).
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any {
        _marker: core::marker::PhantomData,
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a property within a generated case (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a generated case (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that draws `cases` random inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_label(stringify!($name));
                // Bind each strategy once, under its argument's name; the
                // per-case draws below shadow these bindings in order.
                $(let $arg = $strategy;)+
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut __rng);
                    )+
                    let () = $body;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_label("bounds");
        for _ in 0..1000 {
            let x = Strategy::new_value(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::new_value(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = Strategy::new_value(&(1u64..=4), &mut rng);
            assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::from_label("compose");
        let strat = crate::collection::vec((0.5f64..1.0, 0usize..3, any::<bool>()), 1..6)
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let len = Strategy::new_value(&strat, &mut rng);
            assert!((1..=5).contains(&len));
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = TestRng::from_label("x");
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = TestRng::from_label("x");
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_each_argument(x in 0u64..100, y in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
        }
    }
}
