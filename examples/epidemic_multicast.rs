//! The motivating example: epidemic multicast dissemination, comparing the
//! pull protocol that the compiler produces against push and push–pull
//! variants, over reliable and lossy networks, and against the O(log N)
//! analytical prediction.
//!
//! Run with `cargo run --release --example epidemic_multicast`.

use dpde::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("group size sweep: periods until fewer than 5 susceptibles remain\n");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>10}  {:>12}",
        "N", "pull", "push", "push-pull", "O(log N) est"
    );

    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let mut row = Vec::new();
        for style in [
            EpidemicStyle::Pull,
            EpidemicStyle::Push,
            EpidemicStyle::PushPull,
        ] {
            let scenario = Scenario::new(n, 80)?.with_seed(17);
            let result = Epidemic::new()
                .with_style(style)
                .disseminate(&scenario, 1)?;
            let rounds = Epidemic::rounds_to_reach(&result, 5.0)
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_string());
            row.push(rounds);
        }
        println!(
            "{n:>8}  {:>10}  {:>10}  {:>10}  {:>12.1}",
            row[0],
            row[1],
            row[2],
            Epidemic::expected_rounds(n as u64)
        );
    }

    // Message loss slows dissemination but does not stop it.
    println!("\nwith 30 % connection failures (N = 16 000):");
    let lossy = Scenario::new(16_000, 120)?
        .with_seed(17)
        .with_loss(LossConfig::new(0.3, 0.0)?);
    let result = Epidemic::new()
        .with_style(EpidemicStyle::PushPull)
        .disseminate(&lossy, 1)?;
    match Epidemic::rounds_to_reach(&result, 5.0) {
        Some(r) => println!("push-pull still completes, in {r} periods"),
        None => println!("did not complete within the horizon"),
    }

    // The compiled pull protocol also matches its source equations — checked
    // against the mean trajectory of an 8-seed ensemble (fanned across the
    // cores) rather than a single run.
    let epidemic = Epidemic::new();
    let ensemble = Ensemble::of(epidemic.protocol())
        .scenario(Scenario::new(50_000, 30)?)
        .initial(InitialStates::counts(&[49_950, 50]))
        .seed_range(0..8)
        .run::<AgentRuntime>()?;
    let report = compare_to_system(
        &ensemble.mean_as_ode_trajectory(50_000.0),
        &epidemic.equations(),
        0.01,
    )?;
    println!(
        "\npull protocol vs ODE (N = 50 000, mean of {} seeds): max deviation {:.4} of the population",
        ensemble.runs(),
        report.max_abs_error
    );
    Ok(())
}
