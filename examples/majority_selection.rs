//! Case study II: probabilistic majority selection with the Lotka–Volterra
//! protocol (Section 4.2 of the paper).
//!
//! 10 000 processes initially propose 0 or 1 (60 % / 40 %); the LV protocol
//! drives the whole group to the initial majority value. A second run crashes
//! half of the processes mid-run and still converges (the paper's Figure 12).
//!
//! Run with `cargo run --release --example majority_selection`.

use dpde::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = LvParams::new(); // rate 3, normalizing constant p = 0.01
    println!("LV protocol (Figure 3):\n{}", params.protocol()?.render());

    // Theorem 4, verified numerically.
    let classes = params.classify_equilibria()?;
    println!("equilibrium classifications:");
    for (point, class) in [
        ("(0,0)", classes[0]),
        ("(1,0)", classes[1]),
        ("(0,1)", classes[2]),
        ("(1/3,1/3)", classes[3]),
    ] {
        println!("  {point:>9} : {class}");
    }
    println!(
        "predicted convergence for N = 10 000: ≈ {:.0} periods\n",
        params.expected_convergence_periods(10_000)
    );

    let n = 10_000usize;
    let zeros = 6_000u64;
    let ones = 4_000u64;
    let selector = MajoritySelection::new(params);

    // Run 1: failure-free (the paper's Figure 11 setting, scaled down).
    let scenario = Scenario::new(n, 800)?.with_seed(1);
    let outcome = selector.run(&scenario, zeros, ones)?;
    print_outcome("failure-free run", &outcome);

    // Run 2: half of the processes crash at period 100 (Figure 12).
    let scenario = Scenario::new(n, 1_200)?
        .with_massive_failure(100, 0.5)?
        .with_seed(2);
    let outcome = selector.run(&scenario, zeros, ones)?;
    print_outcome("run with 50 % massive failure at t = 100", &outcome);

    // Run 3: the Figure 11 view as a multi-seed ensemble — 8 seeds fanned
    // across the cores, summarized as a mean ± std envelope.
    let ensemble = Ensemble::of(params.protocol()?)
        .scenario(Scenario::new(n, 800)?)
        .initial(InitialStates::counts(&[zeros, ones, 0]))
        .seed_range(0..8)
        .run::<AgentRuntime>()?;
    let (mean_x, std_x) = *ensemble.envelope("x")?.last().unwrap();
    println!(
        "== 8-seed ensemble ({} worker threads) ==",
        ensemble.threads_used
    );
    println!("final x population: {mean_x:.0} ± {std_x:.0} of {n}");
    let wins = ensemble
        .final_counts
        .iter()
        .filter(|last| last[0] > 0.99 * n as f64)
        .count();
    println!(
        "seeds deciding the initial majority: {wins}/{}",
        ensemble.runs()
    );
    Ok(())
}

fn print_outcome(label: &str, outcome: &dpde::protocols::lv::majority::MajorityOutcome) {
    println!("== {label} ==");
    println!("initial majority: {:?}", outcome.initial_majority);
    println!("decision:         {:?}", outcome.decision);
    println!("correct:          {}", outcome.correct);
    match outcome.convergence_period {
        Some(t) => println!("converged at period {t}"),
        None => println!("did not converge within the horizon"),
    }
    println!("state populations over time (x backs 0, y backs 1, z undecided):");
    println!("period        x        y        z");
    let len = outcome.run.counts.len();
    for (t, s) in outcome.run.counts.iter().step_by(len / 10 + 1) {
        println!("{t:>6}  {:>7}  {:>7}  {:>7}", s[0], s[1], s[2]);
    }
    println!();
}
