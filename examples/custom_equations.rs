//! Designing a brand-new protocol from your own differential equations.
//!
//! This example walks the full framework: start from equations that are *not*
//! in mappable form, rewrite them (completion + constant expansion), compile
//! with failure compensation for a lossy network, analyse the equilibria, and
//! validate the running protocol against the equations.
//!
//! The model: a "task heat" system where busy workers recruit idle workers
//! (like an epidemic) but also cool down spontaneously, and a fraction of the
//! group is permanently resting.
//!
//! Run with `cargo run --release --example custom_equations`.

use dpde::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the raw two-variable model: busy (b) and resting (r) workers.
    //    ḃ = k·b·(1 − b − r) − c·b     (recruitment minus cool-down)
    //    ṙ = c·b − a·r                 (cool-down feeds resting, resting wakes up)
    // The remaining fraction 1 − b − r is idle.
    let raw = parse_system(
        "b' = k*b - k*b^2 - k*b*r - c*b\n\
         r' = c*b - a*r",
        &[("k", 2.0), ("c", 0.25), ("a", 0.05)],
    )?;
    println!("raw equations:\n{raw}\n");
    println!("complete? {}", taxonomy::is_complete(&raw));

    // 2. Rewrite into mappable form: add the idle state explicitly so the
    //    right-hand sides sum to zero.
    let completed = rewrite::complete(&raw, "idle")?;
    let report = taxonomy::classify(&completed);
    println!(
        "after completion: complete = {}, completely partitionable = {}, restricted = {}",
        report.complete, report.completely_partitionable, report.restricted_polynomial
    );

    // 3. Compile — on a lossy network, asking the compiler to compensate for a
    //    10 % per-contact failure rate (Section 3, "The Effect of Failures").
    let lossy = LossConfig::new(0.1, 0.0)?;
    let protocol = ProtocolCompiler::new("task-heat")
        .with_failure_compensation(lossy.effective_contact_failure(1))
        .compile(&completed)?;
    println!("\n{}", protocol.render());

    // 4. Analyse: find all equilibria on the simplex and classify them.
    let finder = EquilibriumFinder::new();
    println!("equilibria of the completed system:");
    for eq in finder.search_simplex(&completed, 8) {
        let stability = analyze_equilibrium(&completed, &eq)?;
        println!(
            "  ({:.3}, {:.3}, {:.3})  →  {}",
            eq[0], eq[1], eq[2], stability.classification_reduced
        );
    }

    // 5. Run the protocol over the lossy network and compare against the
    //    ODE. The aggregate runtime picks the loss model up from the
    //    scenario; the count-level fidelity makes the 2000-period run cheap.
    let n = 20_000u64;
    let result = Simulation::of(protocol)
        .scenario(
            Scenario::new(n as usize, 2_000)?
                .with_seed(7)
                .with_loss(lossy),
        )
        .initial(InitialStates::fractions(&[0.05, 0.0, 0.95]))
        .observe(CountsRecorder::new())
        .run::<AggregateRuntime>()?;
    let report = compare_to_system(&result.as_ode_trajectory(n as f64), &completed, 0.05)?;
    println!(
        "\nprotocol vs ODE over 2000 periods: max deviation {:.4}, mean {:.4}",
        report.max_abs_error, report.mean_abs_error
    );
    let last = result.final_counts().expect("counts recorded");
    println!(
        "final populations: busy = {}, resting = {}, idle = {}",
        last[0], last[1], last[2]
    );
    Ok(())
}
