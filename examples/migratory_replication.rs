//! Case study I: migratory replication of a file with the endemic protocol
//! (Section 4.1 of the paper).
//!
//! A 2 000-host persistent store keeps one file alive by letting replicas
//! wander: stashers delete the file after a while (γ), averse hosts become
//! receptive again (α), receptive hosts fetch the file when they contact a
//! stasher (b contacts per period), and stashers push it onto receptive
//! contacts. Halfway through the run, half of the hosts crash.
//!
//! Run with `cargo run --release --example migratory_replication`.

use dpde::prelude::*;
use dpde::protocols::endemic::{analysis, STASH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parameters in the style of the paper's Figure 5 (scaled down so the
    // example finishes in seconds): b = 2 contacts per period, γ = 0.05,
    // α = 0.002.
    let params = EndemicParams::from_contact_count(2, 0.05, 0.002)?;
    let n = 2_000usize;
    let periods = 800u64;

    println!(
        "endemic parameters: β = {}, γ = {}, α = {}",
        params.beta, params.gamma, params.alpha
    );
    let eq = params.equilibria(n as f64);
    println!(
        "analysis: equilibrium (receptive, stash, averse) = ({:.1}, {:.1}, {:.1})",
        eq.endemic[0], eq.endemic[1], eq.endemic[2]
    );
    println!(
        "Theorem 3: endemic equilibrium stable? {} (stable spiral: {})",
        params.endemic_equilibrium_is_stable(),
        params.is_stable_spiral()?
    );

    // Longevity estimate (probabilistic safety).
    let longevity = analysis::longevity(eq.endemic[1], 360.0);
    println!(
        "probability that all replicas vanish before new ones appear: {:.3e}; expected object lifetime {:.3e} years",
        longevity.extinction_probability, longevity.expected_years
    );

    // Run the protocol, crashing 50 % of the hosts at the halfway point.
    let store = MigratoryStore::new(params)?.with_stasher_tracking();
    let scenario = Scenario::new(n, periods)?
        .with_massive_failure(periods / 2, 0.5)?
        .with_seed(2024);
    let report = store.run_from_equilibrium(&scenario)?;

    println!("\nperiod  alive  stashers  flux(receptive->stash)");
    let stashers = report.run.state_series(STASH)?;
    for t in (0..=periods).step_by(80) {
        let alive = report
            .run
            .metrics
            .series("alive")?
            .iter()
            .find(|(p, _)| *p == t)
            .map_or(0.0, |(_, v)| *v);
        let flux = report
            .run
            .transitions
            .series("receptive->stash")
            .ok()
            .and_then(|s| s.iter().find(|(p, _)| *p == t).map(|(_, v)| *v))
            .unwrap_or(0.0);
        println!("{t:>6}  {alive:>5}  {:>8}  {flux:>6}", stashers[t as usize]);
    }

    println!(
        "\nobject survived the whole run: {}",
        report.object_survived
    );
    println!("mean stashers (second half): {:.1}", report.mean_stashers);
    println!(
        "mean file flux per period (second half): {:.2}",
        report.mean_flux
    );
    println!(
        "replica untraceability: mean consecutive Jaccard similarity {:.3} (1 = static placement)",
        report.mean_consecutive_jaccard.unwrap_or(1.0)
    );
    println!(
        "load balancing: coefficient of variation of per-host stash time {:.3}",
        report.load_balance_cv.unwrap_or(0.0)
    );

    // The same protocol replayed at count-level fidelity through the generic
    // Simulation driver: no host identity (so no failure modelling), but
    // orders of magnitude faster — handy for parameter sweeps before paying
    // for the agent-level run.
    let mut counts = [
        eq.endemic[0].round() as u64,
        eq.endemic[1].round().max(1.0) as u64,
        0,
    ];
    counts[2] = n as u64 - counts[0] - counts[1];
    let fast = Simulation::of(params.figure1_protocol()?)
        .scenario(Scenario::new(n, periods)?.with_seed(7))
        .initial(InitialStates::counts(&counts))
        .observe(CountsRecorder::new())
        .run::<AggregateRuntime>()?;
    println!(
        "\naggregate-fidelity cross-check (no failures): final stasher count {:.0}",
        fast.state_series(STASH)?.last().unwrap()
    );
    Ok(())
}
