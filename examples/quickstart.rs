//! Quickstart: write differential equations, compile them into a distributed
//! protocol, run the protocol in simulation, and check that the run tracks
//! the equations (the paper's Theorem 1, measured).
//!
//! Run with `cargo run --release --example quickstart`.

use dpde::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The epidemic equations of the paper's motivating example:
    //    ẋ = −xy (susceptible), ẏ = xy (infected).
    let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
    println!("source equations:\n{sys}\n");

    // The taxonomy tells us which mapping rules apply.
    let report = taxonomy::classify(&sys);
    println!(
        "polynomial: {}, complete: {}, completely partitionable: {}, restricted: {}",
        report.polynomial,
        report.complete,
        report.completely_partitionable,
        report.restricted_polynomial
    );

    // 2. Compile the equations into a protocol state machine.
    let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
    println!("\n{}", protocol.render());

    // Message complexity: susceptible processes send one sampling message per
    // protocol period; infected processes send none.
    let mc = MessageComplexity::of(&protocol);
    println!(
        "worst-case messages per process per period: {}",
        mc.worst_case()
    );

    // 3. Run the protocol on 10 000 simulated processes, one initial
    //    infective. The Simulation builder records only what we observe;
    //    swapping `AgentRuntime` for `BatchedRuntime` or `AggregateRuntime`
    //    replays the same experiment at count-level fidelity.
    let n = 10_000usize;
    let result = Simulation::of(protocol.clone())
        .scenario(Scenario::new(n, 40)?.with_seed(42))
        .initial(InitialStates::counts(&[n as u64 - 1, 1]))
        .observe(CountsRecorder::new())
        .run::<AgentRuntime>()?;

    println!("\nperiod  susceptible  infected");
    for (t, state) in result.counts.iter().step_by(4) {
        println!("{t:>6}  {:>11}  {:>8}", state[0], state[1]);
    }

    // 4. Compare the run against a numerical integration of the equations.
    let report = compare_to_system(&result.as_ode_trajectory(n as f64), &sys, 0.01)?;
    println!(
        "\nprotocol vs ODE: max deviation {:.4}, mean deviation {:.4} (fractions)",
        report.max_abs_error, report.mean_abs_error
    );

    // 4b. The same experiment at one million processes. `run_auto` picks the
    //     fastest trustworthy fidelity: here the single initial infective is
    //     a small count, so it selects the hybrid runtime — per-process
    //     while the infected population is tiny, count-batched (cost
    //     independent of N) once every population is large — and the run
    //     still takes milliseconds.
    let big_n = 1_000_000usize;
    let big = Simulation::of(protocol.clone())
        .scenario(Scenario::new(big_n, 40)?.with_seed(42))
        .initial(InitialStates::counts(&[big_n as u64 - 1, 1]))
        .observe(CountsRecorder::new())
        .run_auto()?;
    println!(
        "batched at N = 10^6: {} of 10^6 infected after 40 periods",
        big.final_counts().expect("counts recorded")[1]
    );

    // 5. The analysis toolbox works on the same equations: the all-infected
    //    point (0, 1) is the stable outcome.
    let stability = analyze_equilibrium(&sys, &[0.0, 1.0])?;
    println!("equilibrium (0, 1) is {}", stability.classification_reduced);
    Ok(())
}
