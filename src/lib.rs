//! # dpde — distributed protocols from differential equations
//!
//! A Rust reproduction of *"On the Design of Distributed Protocols from
//! Differential Equations"* (Indranil Gupta, PODC 2004).
//!
//! This facade crate re-exports the four member crates of the workspace:
//!
//! * [`odekit`] — polynomial ODE systems, the taxonomy (complete / completely
//!   partitionable / restricted polynomial), rewriting, numerical integration
//!   and non-linear dynamics analysis;
//! * [`netsim`] — the round-based process-group simulator (membership,
//!   failures, churn, message loss, transport models, metrics);
//! * [`core`] — the ODE→protocol compiler (Flipping, One-Time-Sampling,
//!   Tokenizing), the compiled state machines, the
//!   [`Runtime`](dpde_core::Runtime) trait with its agent / batched /
//!   hybrid / aggregate / sharded / async / SSA / tau-leap implementations,
//!   the [`ErrorBudget`](dpde_core::runtime::ErrorBudget) tier policy,
//!   composable observers, and the
//!   [`Simulation`](dpde_core::Simulation) / [`dpde_core::Ensemble`]
//!   drivers;
//! * [`protocols`] — the paper's case studies: epidemic
//!   dissemination, endemic migratory replication, and Lotka–Volterra
//!   majority selection.
//!
//! The [`prelude`] pulls in the types most programs need.
//!
//! # Quickstart
//!
//! Write equations, compile them, describe the environment, run — recording
//! only what you ask for:
//!
//! ```
//! use dpde::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Write differential equations.
//! let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
//!
//! // 2. Compile them into a distributed protocol.
//! let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
//!
//! // 3. Run the protocol on a simulated group of processes. The same
//! //    Simulation runs on AgentRuntime (per-host fidelity) or
//! //    AggregateRuntime (counts only, much faster).
//! let result = Simulation::of(protocol)
//!     .scenario(Scenario::new(1_000, 30)?.with_seed(7))
//!     .initial(InitialStates::counts(&[999, 1]))
//!     .observe(CountsRecorder::new())
//!     .run::<AgentRuntime>()?;
//! assert!(result.final_counts().expect("counts recorded")[1] > 990.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Multi-seed ensembles
//!
//! The paper's evaluation compares protocol dynamics against the ODE limit
//! over many independent runs. [`Ensemble`](dpde_core::Ensemble) fans a seed
//! range across all cores and returns per-period mean/std envelopes — a
//! Figure-11-style convergence sweep in a few lines:
//!
//! ```
//! use dpde::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let protocol = LvParams::new().protocol()?; // Lotka–Volterra majority selection
//! let ensemble = Ensemble::of(protocol)
//!     .scenario(Scenario::new(2_000, 700)?)
//!     .initial(InitialStates::counts(&[1_200, 800, 0])) // 60/40 split
//!     .seed_range(0..8)
//!     .run::<AgentRuntime>()?;
//! let (mean_x, std_x) = *ensemble.envelope("x")?.last().unwrap();
//! assert!(mean_x > 1_900.0, "majority wins on average: {mean_x} ± {std_x}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpde_core as core;
pub use dpde_protocols as protocols;
pub use netsim;
pub use odekit;

/// The most commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use dpde_core::equivalence::{compare_to_system, compare_trajectories};
    pub use dpde_core::runtime::{
        AgentRuntime, AggregateRuntime, AliveTracker, AsyncRuntime, BatchedRuntime, CountsRecorder,
        Ensemble, EnsembleResult, ErrorBudget, FidelityTier, HybridRuntime, InitialStates,
        LiveMetrics, LiveMetricsHandle, MembershipTracker, MessageCounter, Observer, PeriodEvents,
        ResilienceReport, RunConfig, RunDeadline, RunResult, RunStatus, Runtime, SeedFailure,
        ShardCountsRecorder, ShardedRuntime, Simulation, SsaRuntime, TauLeapRuntime,
        TransitionRecorder, TransportProbe, DEFAULT_TAU_EPSILON,
    };
    pub use dpde_core::{Action, MessageComplexity, Protocol, ProtocolCompiler, StateId};
    pub use dpde_protocols::endemic::replication::MigratoryStore;
    pub use dpde_protocols::endemic::EndemicParams;
    pub use dpde_protocols::epidemic::{Epidemic, EpidemicStyle};
    pub use dpde_protocols::lv::majority::{Decision, MajoritySelection};
    pub use dpde_protocols::lv::LvParams;
    pub use dpde_protocols::small_count::{NearExtinction, NearTieTakeover};
    pub use netsim::stochastic;
    pub use netsim::{
        maybe_run_worker, Adversary, AdversaryView, Backoff, CascadingFailure, ChurnTrace,
        FailureSchedule, Group, HeavyTailedChurn, InProcTransport, Injection, InjectionRecord,
        LatencyModel, LinkModel, LinkPartition, LossConfig, MetricsRecorder, ObliviousSchedule,
        OnlineStats, PeriodClock, Placement, RetryPolicy, Rng, Scenario, ShardConfig, SocketConfig,
        SyntheticChurnConfig, TargetLargestState, TargetWinner, TimeoutPolicy, Topology, Transport,
        TransportBackend, TransportConfig, TransportGauges, TransportStats, UdsTransport,
        WorkerLauncher, WorkerSupervisor,
    };
    pub use odekit::analysis::{
        analyze_equilibrium, phase_portrait, EquilibriumFinder, PhasePortrait, Stability,
    };
    pub use odekit::integrate::{Euler, Integrator, Rk4, Rkf45, Trajectory};
    pub use odekit::parse::parse_system;
    pub use odekit::rewrite;
    pub use odekit::taxonomy;
    pub use odekit::{EquationSystem, EquationSystemBuilder, Polynomial, Term};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports_work() {
        use crate::prelude::*;
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        assert!(taxonomy::is_complete(&sys));
        let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
        assert_eq!(protocol.num_states(), 2);
        // The new driver types are reachable through the prelude.
        let _ = Simulation::of(protocol.clone());
        let _ = Ensemble::of(protocol.clone());
        // … as are the continuous-time runtimes, the error-budget policy and
        // the continuous-time samplers.
        let _ = SsaRuntime::new(protocol.clone());
        let _ = TauLeapRuntime::new(protocol.clone()).with_epsilon(DEFAULT_TAU_EPSILON);
        let budgeted = Simulation::of(protocol).error_budget(ErrorBudget::Bounded(0.05));
        drop(budgeted);
        let mut rng = Rng::seed_from(7);
        assert!(stochastic::exponential(&mut rng, 2.0) >= 0.0);
        let _ = stochastic::poisson(&mut rng, 3.0);
        assert!(rng.exponential(1.0) >= 0.0);
    }

    #[test]
    fn async_quickstart_works_from_the_prelude_alone() {
        // The README's transport quickstart, spelled entirely in prelude
        // names: build a lossy latency link, run the async runtime under
        // run_auto, and stream live transport gauges while it executes.
        use crate::prelude::*;
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
        let link = LinkModel::new(LatencyModel::Exponential { mean: 30.0 }, 0.01).unwrap();
        let scenario = Scenario::new(400, 30)
            .unwrap()
            .with_seed(5)
            .with_transport(TransportConfig::new(link))
            .unwrap();
        let live = LiveMetrics::new();
        let handle: LiveMetricsHandle = live.handle();
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[399, 1]))
            .observe(CountsRecorder::new())
            .observe(live)
            .run_auto()
            .unwrap();
        assert!(result.final_counts().unwrap()[1] > 300.0);
        assert!(handle.sent() > 0);
        // 30 stepped periods plus the initial snapshot.
        assert_eq!(handle.periods_observed(), 31);
        let probe: TransportProbe = TransportProbe::default();
        assert_eq!(probe.queue_depth, 0);
    }
}
