//! End-to-end integration tests spanning all workspace crates: equations →
//! rewriting → compilation → simulation → comparison with the analysis.

use dpde::prelude::*;

/// The full pipeline on the motivating epidemic example: parse, classify,
/// compile, run, and verify the run against the ODE and the O(log N) claim.
#[test]
fn epidemic_pipeline_from_text_to_verified_run() {
    let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
    let report = taxonomy::classify(&sys);
    assert!(report.mappable_without_tokens());

    let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
    assert_eq!(MessageComplexity::of(&protocol).worst_case(), 1);

    let n = 8_192usize;
    let scenario = Scenario::new(n, 60).unwrap().with_seed(99);
    let run = AgentRuntime::new(protocol)
        .run(&scenario, &InitialStates::counts(&[n as u64 - 1, 1]))
        .unwrap();

    // Saturation in O(log N) periods.
    let infected = run.state_series("y").unwrap();
    let saturation = infected.iter().position(|&y| y >= (n - 5) as f64);
    assert!(saturation.is_some());
    assert!((saturation.unwrap() as f64) < 3.0 * Epidemic::expected_rounds(n as u64));

    // The trajectory tracks the differential equations. With the compiler's
    // automatic normalizing constant p = 1 the protocol is a coarse (one time
    // unit per period) discretization of the ODE, so the transient carries an
    // O(p) bias; the qualitative shape and the endpoint still agree.
    let eq_report = compare_to_system(&run.as_ode_trajectory(n as f64), &sys, 0.01).unwrap();
    assert!(
        eq_report.max_abs_error < 0.3,
        "error {}",
        eq_report.max_abs_error
    );
    let final_fraction = run.final_counts().expect("counts recorded")[1] / n as f64;
    assert!(final_fraction > 0.99);
}

/// The generic driver stack end to end: one `Simulation` spec executed on
/// both runtime fidelities, and an `Ensemble` fanning 8 seeds across worker
/// threads whose mean trajectory tracks the ODE.
#[test]
fn simulation_and_ensemble_drivers_work_across_fidelities() {
    let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
    let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
    let n = 4_000usize;

    // The same builder spec, replayed at both fidelities.
    let spec = |protocol: Protocol| {
        Simulation::of(protocol)
            .scenario(Scenario::new(n, 40).unwrap().with_seed(6))
            .initial(InitialStates::counts(&[n as u64 - 4, 4]))
            .observe(CountsRecorder::new())
    };
    let agent = spec(protocol.clone()).run::<AgentRuntime>().unwrap();
    let aggregate = spec(protocol.clone()).run::<AggregateRuntime>().unwrap();
    for run in [&agent, &aggregate] {
        assert!(run.final_counts().unwrap()[1] > 0.99 * n as f64);
        // Opt-in recording: only counts were requested.
        assert!(run.metrics.series_names().is_empty());
        assert!(run.tracked_members.is_empty());
    }

    // Ensemble of 8 seeds across threads: the mean trajectory tracks the ODE.
    let ensemble = Ensemble::of(protocol)
        .scenario(Scenario::new(n, 40).unwrap())
        .initial(InitialStates::counts(&[n as u64 - 4, 4]))
        .seed_range(0..8)
        .threads(4)
        .run::<AgentRuntime>()
        .unwrap();
    assert_eq!(ensemble.runs(), 8);
    assert!(ensemble.threads_used > 1);
    let report = compare_to_system(&ensemble.mean_as_ode_trajectory(n as f64), &sys, 0.01).unwrap();
    assert!(report.max_abs_error < 0.3, "error {}", report.max_abs_error);
}

/// The LV rewrite chain of Section 4.2.1: original → completed → rewritten →
/// compiled protocol, all agreeing on the simplex, and the protocol picking
/// the initial majority.
#[test]
fn lv_rewrite_chain_and_majority_outcome() {
    let params = LvParams::new();
    let original = params.original_equations();
    let completed = rewrite::complete(&original, "z").unwrap();
    let rewritten = params.rewritten_equations();

    assert!(!taxonomy::is_complete(&original));
    assert!(taxonomy::is_complete(&completed));
    assert!(taxonomy::classify(&rewritten).mappable_without_tokens());

    // The rewritten system equals the completed system on the simplex.
    for state in [[0.5, 0.3, 0.2], [0.1, 0.1, 0.8], [0.34, 0.33, 0.33]] {
        let a = completed.eval_rhs(&state);
        let b = rewritten.eval_rhs(&state);
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9);
        }
    }

    // Majority selection picks the initial majority.
    let selector = MajoritySelection::new(params);
    let scenario = Scenario::new(3_000, 700).unwrap().with_seed(5);
    let outcome = selector.run(&scenario, 1_000, 2_000).unwrap();
    assert_eq!(outcome.decision, Decision::One);
    assert!(outcome.correct);
}

/// Endemic replication keeps an object alive through a massive failure, with
/// the observed equilibrium matching the closed-form analysis (Figures 5 & 7
/// in miniature).
#[test]
fn endemic_replication_survives_massive_failure_and_matches_analysis() {
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    let n = 2_000usize;
    let store = MigratoryStore::new(params).unwrap();
    let scenario = Scenario::new(n, 500)
        .unwrap()
        .with_massive_failure(250, 0.5)
        .unwrap()
        .with_seed(12);
    let report = store.run_from_equilibrium(&scenario).unwrap();
    assert!(report.object_survived);

    // Before the failure the stasher count sits near the analytical value.
    let stashers = report.run.state_series("stash").unwrap();
    let expected = params.expected_stashers(n as f64);
    let pre: f64 = stashers[150..250].iter().sum::<f64>() / 100.0;
    assert!(
        (pre - expected).abs() < 0.3 * expected,
        "pre {pre} vs analysis {expected}"
    );

    // After the failure, half the contacts are fruitless: the receptive count
    // stays roughly the same while stashers drop by about half (the paper's
    // explanation of Figure 5).
    let post: f64 = stashers[450..].iter().sum::<f64>() / (stashers.len() - 450) as f64;
    assert!(
        post < 0.75 * pre,
        "post {post} should be well below pre {pre}"
    );
    assert!(
        post > 0.2 * pre,
        "object population should not collapse, post {post}"
    );
}

/// Churn from a synthetic Overnet-like trace (Figures 9 & 10 in miniature):
/// the stasher population and flux stay stable under 10–25 % hourly churn.
#[test]
fn endemic_replication_is_churn_resistant() {
    let params = EndemicParams::from_contact_count(8, 0.1, 0.02).unwrap();
    let n = 1_000usize;
    let churn_cfg = SyntheticChurnConfig {
        hosts: n,
        hours: 30,
        mean_availability: 0.7,
        churn_min: 0.10,
        churn_max: 0.25,
    };
    let mut rng = Rng::seed_from(77);
    let trace = churn_cfg.generate(&mut rng).unwrap();
    let clock = PeriodClock::six_minutes();
    let periods = clock.periods_per_hour() * trace.hours() as u64;
    let scenario = Scenario::new(n, periods)
        .unwrap()
        .with_clock(clock)
        .with_churn_trace(&trace, &mut rng)
        .unwrap()
        .with_seed(78);

    let store = MigratoryStore::new(params).unwrap();
    let report = store.run_from_equilibrium(&scenario).unwrap();
    assert!(report.object_survived, "the object must survive churn");

    // The stasher count stays within a band around the (availability-adjusted)
    // equilibrium over the second half of the run.
    let stashers = report.run.state_series("stash").unwrap();
    let half = stashers.len() / 2;
    let mean = stashers[half..].iter().sum::<f64>() / (stashers.len() - half) as f64;
    let alive_equilibrium = params.expected_stashers(0.7 * n as f64);
    assert!(
        mean > 0.3 * alive_equilibrium && mean < 2.0 * alive_equilibrium,
        "mean stashers {mean} vs availability-adjusted equilibrium {alive_equilibrium}"
    );
}

/// The compiler's failure compensation (Section 3) restores the intended
/// equilibrium on a lossy network.
#[test]
fn failure_compensation_restores_equilibrium_under_losses() {
    let sys = EquationSystemBuilder::new()
        .vars(["x", "y", "z"])
        .term("x", -0.8, &[("x", 1), ("y", 1)])
        .term("x", 0.02, &[("z", 1)])
        .term("y", 0.8, &[("x", 1), ("y", 1)])
        .term("y", -0.1, &[("y", 1)])
        .term("z", 0.1, &[("y", 1)])
        .term("z", -0.02, &[("z", 1)])
        .build()
        .unwrap();
    let loss = LossConfig::new(0.3, 0.0).unwrap();
    let f = loss.effective_contact_failure(1);
    let n = 50_000u64;
    // Expected equilibrium receptive fraction without losses: γ/β = 0.125.
    let initial = InitialStates::fractions(&[0.125, 0.15, 0.725]);

    let naive = ProtocolCompiler::new("naive").compile(&sys).unwrap();
    let compensated = ProtocolCompiler::new("compensated")
        .with_failure_compensation(f)
        .compile(&sys)
        .unwrap();

    let run = |protocol| {
        AggregateRuntime::new(protocol)
            .with_loss(loss)
            .run(n, 3_000, &initial, 31)
            .unwrap()
    };
    let naive_run = run(naive);
    let comp_run = run(compensated);

    let tail_mean = |r: &RunResult| {
        let xs = r.state_series("x").unwrap();
        xs[2_000..].iter().sum::<f64>() / (xs.len() - 2_000) as f64
    };
    let target = 0.125 * n as f64;
    let naive_x = tail_mean(&naive_run);
    let comp_x = tail_mean(&comp_run);
    // Without compensation the receptive population overshoots the target
    // (fewer successful contacts); with compensation it comes back to it.
    assert!(naive_x > 1.2 * target, "naive {naive_x} vs target {target}");
    assert!(
        (comp_x - target).abs() < 0.15 * target,
        "compensated {comp_x} vs target {target}"
    );
}

/// Tokenizing end to end: a polynomial (but not restricted) system still
/// compiles and its protocol tracks the equations.
#[test]
fn tokenizing_protocol_tracks_equations() {
    // "Recruitment by committee": an (x, y) pair recruits an undecided z into
    // x. The z equation loses mass through a term that does not contain z, so
    // the compiler must emit a Tokenizing action (hosted by x, consuming a z).
    let sys = EquationSystemBuilder::new()
        .vars(["x", "y", "z"])
        .term("x", 0.5, &[("x", 1), ("y", 1)])
        .term("z", -0.5, &[("x", 1), ("y", 1)])
        .build()
        .unwrap();
    let report = taxonomy::classify(&sys);
    assert!(report.mappable());
    assert!(!report.mappable_without_tokens());

    let protocol = ProtocolCompiler::new("token")
        .with_normalizing_constant(0.05)
        .compile(&sys)
        .unwrap();
    // Compare over a horizon on which the ODE keeps z positive (the ODE has no
    // positivity constraint, while the protocol drops tokens once no z-process
    // remains — exactly the divergence Section 6's "Limitations of Tokenizing"
    // warns about). 80 periods × p = 4 ODE time units keeps z well above 0.
    let n = 100_000u64;
    let run = AggregateRuntime::new(protocol)
        .run(n, 80, &InitialStates::fractions(&[0.3, 0.3, 0.4]), 13)
        .unwrap();
    // z drains into x while y stays put.
    let last = run.final_counts().expect("counts recorded");
    assert!(last[2] < 0.22 * n as f64, "z should drain, got {}", last[2]);
    assert!(last[0] > 0.45 * n as f64, "x should grow, got {}", last[0]);
    assert!((last[1] - 0.3 * n as f64).abs() < 0.01 * n as f64);
    let eq_report = compare_to_system(&run.as_ode_trajectory(n as f64), &sys, 0.01).unwrap();
    assert!(
        eq_report.max_abs_error < 0.05,
        "error {}",
        eq_report.max_abs_error
    );
}

/// The generic analysis machinery reproduces the paper's Theorem 3 and
/// Theorem 4 statements.
#[test]
fn analysis_reproduces_paper_theorems() {
    // Theorem 3 for the Figure 2 parameters.
    let endemic = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
    assert!(endemic.endemic_equilibrium_is_stable());
    assert!(endemic.is_stable_spiral().unwrap());
    let trivial = analyze_equilibrium(&endemic.equations(), &[1.0, 0.0, 0.0]).unwrap();
    assert_eq!(trivial.classification_reduced, Stability::Saddle);

    // Theorem 4 for the LV system.
    let lv = LvParams::new();
    let classes = lv.classify_equilibria().unwrap();
    assert_eq!(classes[0], Stability::UnstableNode);
    assert_eq!(classes[1], Stability::StableNode);
    assert_eq!(classes[2], Stability::StableNode);
    assert_eq!(classes[3], Stability::Saddle);
}
