//! Smoke test: every example under `examples/` must compile.
//!
//! `cargo test` already builds examples for the test profile, but this
//! test makes the guarantee explicit (and covers `cargo build --examples`
//! in the release workflow) by compiling each example source as a module.
//! A new example added to `examples/` must also be listed here.

#![allow(dead_code)]

#[path = "../examples/custom_equations.rs"]
mod custom_equations;
#[path = "../examples/epidemic_multicast.rs"]
mod epidemic_multicast;
#[path = "../examples/majority_selection.rs"]
mod majority_selection;
#[path = "../examples/migratory_replication.rs"]
mod migratory_replication;
#[path = "../examples/quickstart.rs"]
mod quickstart;

/// The examples listed above must stay in sync with the files on disk.
#[test]
fn all_examples_are_covered() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    let covered = [
        "custom_equations",
        "epidemic_multicast",
        "majority_selection",
        "migratory_replication",
        "quickstart",
    ];
    assert_eq!(
        on_disk, covered,
        "examples/*.rs and tests/examples_build.rs are out of sync: \
         add any new example as a #[path] module in this test"
    );
}

/// The cheapest example must also *run* successfully, exercising the whole
/// parse -> compile -> simulate pipeline end to end. The example binary was
/// already built by `cargo test`, so the nested cargo call only runs it.
#[test]
fn quickstart_example_runs() {
    let output = std::process::Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo run --example quickstart starts");
    assert!(
        output.status.success(),
        "quickstart example failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("protocol vs ODE"),
        "unexpected quickstart output:\n{stdout}"
    );
}
