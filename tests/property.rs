//! Property-based tests over randomly generated equation systems and protocol
//! configurations, exercising the framework's invariants:
//!
//! * completion always yields a complete system;
//! * systems built from random cancelling term pairs are completely
//!   partitionable and compile;
//! * compiled protocols never produce out-of-range probabilities and conserve
//!   the process count when executed;
//! * the normalizing constant only rescales time, not the equilibrium;
//! * samplers and integrators behave within tolerance;
//! * the sharded runtime degenerates exactly to the batched runtime at S = 1,
//!   matches it statistically under full mixing, and conserves the total
//!   population under migration, crashes and shard-targeted events;
//! * the continuous-time fidelities (exact SSA and tau-leaping) match the
//!   synchronized tiers' ensemble means at slow per-period rates, and the
//!   tau-leap runtime's small-count fallback to exact SSA steps is
//!   deterministic per seed.

use dpde::prelude::*;
use proptest::prelude::*;

/// Strategy: a random polynomial system over `dim` variables built from
/// `pairs` cancelling term pairs (so it is complete and completely
/// partitionable by construction), with every negative term containing its
/// own variable (so it is also restricted polynomial).
fn partitionable_system(dim: usize, pairs: usize) -> impl Strategy<Value = EquationSystem> {
    let coeff = 0.05f64..1.0;
    let src = 0..dim;
    let dst = 0..dim;
    let other = 0..dim;
    proptest::collection::vec((coeff, src, dst, other, any::<bool>()), 1..=pairs).prop_map(
        move |specs| {
            let names: Vec<String> = (0..dim).map(|i| format!("v{i}")).collect();
            let mut builder = EquationSystemBuilder::new().vars(names.clone());
            for (c, src, dst, other, include_other) in specs {
                let dst = if dst == src { (dst + 1) % dim } else { dst };
                // Negative term in `src`'s equation, containing src (restricted),
                // optionally multiplied by one more variable.
                let mut factors: Vec<(&str, u32)> = vec![(names[src].as_str(), 1)];
                if include_other {
                    factors.push((names[other].as_str(), 1));
                }
                builder = builder.term(&names[src], -c, &factors);
                builder = builder.term(&names[dst], c, &factors);
            }
            builder.build().expect("constructed system is well-formed")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completion makes any random polynomial system complete, and preserves
    /// the original right-hand sides.
    #[test]
    fn completion_always_yields_complete_systems(
        coeffs in proptest::collection::vec((-2.0f64..2.0, 0usize..3, 0usize..3), 1..6)
    ) {
        let names = ["a", "b", "c"];
        let mut builder = EquationSystemBuilder::new().vars(names);
        for (c, var, target) in &coeffs {
            builder = builder.term(names[*target], *c, &[(names[*var], 1)]);
        }
        let sys = builder.build().unwrap();
        let completed = rewrite::complete(&sys, "slack").unwrap();
        prop_assert!(taxonomy::is_complete(&completed));
        // Original components unchanged at a probe point.
        let probe3 = [0.2, 0.3, 0.1];
        let probe4 = [0.2, 0.3, 0.1, 0.4];
        let orig = sys.eval_rhs(&probe3);
        let comp = completed.eval_rhs(&probe4);
        for (o, c) in orig.iter().zip(&comp) {
            prop_assert!((o - c).abs() < 1e-12);
        }
    }

    /// Randomly generated partitionable systems are classified as mappable and
    /// compile into protocols whose probabilities are all within [0, 1].
    #[test]
    fn random_partitionable_systems_compile(sys in partitionable_system(3, 5)) {
        let report = taxonomy::classify(&sys);
        prop_assert!(report.complete);
        prop_assert!(report.completely_partitionable);
        prop_assert!(report.restricted_polynomial);

        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        prop_assert!(protocol.validate().is_ok());
        prop_assert!(protocol.time_scale() > 0.0 && protocol.time_scale() <= 1.0);
        for state in protocol.state_ids() {
            for action in protocol.actions(state) {
                prop_assert!((0.0..=1.0).contains(&action.prob()));
            }
        }
    }

    /// Executing a compiled protocol conserves the number of processes, in
    /// both runtimes.
    #[test]
    fn compiled_protocols_conserve_processes(
        sys in partitionable_system(3, 4),
        seed in 0u64..1000,
    ) {
        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        let n = 600u64;
        let initial = InitialStates::counts(&[200, 200, 200]);

        let agg = AggregateRuntime::new(protocol.clone()).run(n, 40, &initial, seed).unwrap();
        for (_, s) in agg.counts.iter() {
            prop_assert_eq!(s.iter().sum::<f64>() as u64, n);
        }

        let scenario = Scenario::new(n as usize, 20).unwrap().with_seed(seed);
        let agent = AgentRuntime::new(protocol).run(&scenario, &initial).unwrap();
        for (_, s) in agent.counts.iter() {
            prop_assert_eq!(s.iter().sum::<f64>() as u64, n);
        }
    }

    /// The normalizing constant only rescales time: two compilations of the
    /// same system with different p reach the same state at the same ODE time.
    #[test]
    fn normalizing_constant_only_rescales_time(seed in 0u64..500) {
        let params = EndemicParams::new(0.8, 0.2, 0.05).unwrap();
        let sys = params.equations();
        let n = 200_000u64;
        let initial = InitialStates::fractions(&[0.25, 0.25, 0.5]);

        let fast = ProtocolCompiler::new("fast").with_normalizing_constant(1.0)
            .compile(&sys).unwrap();
        let slow = ProtocolCompiler::new("slow").with_normalizing_constant(0.25)
            .compile(&sys).unwrap();

        // 50 periods at p=1 cover the same ODE time as 200 periods at p=0.25.
        let fast_run = AggregateRuntime::new(fast).run(n, 50, &initial, seed).unwrap();
        let slow_run = AggregateRuntime::new(slow).run(n, 200, &initial, seed + 1).unwrap();
        let f = fast_run.as_ode_trajectory(n as f64);
        let s = slow_run.as_ode_trajectory(n as f64);
        prop_assert!((f.last_time() - s.last_time()).abs() < 1e-9);
        for (a, b) in f.last_state().iter().zip(s.last_state()) {
            // Agreement within a few percent: stochastic noise at N = 200 000
            // plus the coarser discretization of the p = 1 run.
            prop_assert!((a - b).abs() < 0.04, "{a} vs {b}");
        }
    }

    /// Binomial sampling (the aggregate runtime's engine) stays within 5
    /// standard deviations of its mean.
    #[test]
    fn binomial_sampler_is_well_behaved(n in 1u64..50_000, p in 0.0f64..1.0, seed in 0u64..10_000) {
        let mut rng = netsim::Rng::seed_from(seed);
        let k = netsim::stochastic::binomial(&mut rng, n, p);
        prop_assert!(k <= n);
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        prop_assert!((k as f64 - mean).abs() <= 5.0 * sd + 1.0);
    }

    /// RK4 conserves the invariant Σx of complete systems along the trajectory.
    #[test]
    fn rk4_preserves_completeness_invariant(sys in partitionable_system(3, 4)) {
        let traj = Rk4::new(0.05).integrate(&sys, 0.0, &[0.3, 0.3, 0.4], 5.0).unwrap();
        for (_, state) in traj.iter() {
            let sum: f64 = state.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    /// The equilibrium finder only returns genuine zeros of the RHS.
    #[test]
    fn equilibrium_finder_returns_genuine_equilibria(sys in partitionable_system(3, 4)) {
        for eq in EquilibriumFinder::new().search_simplex(&sys, 4) {
            let rhs = sys.eval_rhs(&eq);
            for v in rhs {
                prop_assert!(v.abs() < 1e-6);
            }
        }
    }
}

/// Ensemble-mean epidemic trajectory of one runtime fidelity, through the
/// generic `Runtime` trait (the drivers never see the concrete type).
fn epidemic_ensemble_mean<R: Runtime>(
    protocol: &Protocol,
    n: usize,
    periods: u64,
    seed_base: u64,
    infected: u64,
) -> Trajectory {
    Ensemble::of(protocol.clone())
        .scenario(Scenario::new(n, periods).unwrap())
        .initial(InitialStates::counts(&[n as u64 - infected, infected]))
        .seeds(seed_base..seed_base + 8)
        .threads(4)
        .run::<R>()
        .expect("ensemble runs")
        .mean_as_ode_trajectory(n as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// All four runtime fidelities — agent (per-process), batched
    /// (count-batched stochastic), hybrid (batched with per-process
    /// small-count segments) and aggregate (mean-field sampling) — are
    /// statistically equivalent through the `Runtime` trait: over an 8-seed
    /// ensemble, the mean epidemic trajectory of each fidelity stays within
    /// tolerance of an RK4 integration of the source equations — and hence
    /// of every other fidelity. The hybrid runs start with a handful of
    /// infectives and end with the susceptibles near extinction, so they
    /// cross the fidelity handoff in both directions.
    #[test]
    fn runtimes_are_statistically_equivalent_through_the_trait(
        seed_base in 0u64..1_000,
        infected in 4u64..32,
    ) {
        // p = 0.2 keeps the synchronous-update discretization bias of the
        // count-level runtimes well below the comparison tolerance.
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 2_000;
        let periods = 150;

        let agent = epidemic_ensemble_mean::<AgentRuntime>(&protocol, n, periods, seed_base, infected);
        let batched =
            epidemic_ensemble_mean::<BatchedRuntime>(&protocol, n, periods, seed_base, infected);
        let hybrid =
            epidemic_ensemble_mean::<HybridRuntime>(&protocol, n, periods, seed_base, infected);
        let aggregate =
            epidemic_ensemble_mean::<AggregateRuntime>(&protocol, n, periods, seed_base, infected);

        // Each fidelity tracks the ODE…
        let agent_vs_ode = compare_to_system(&agent, &sys, 0.01).unwrap();
        let batched_vs_ode = compare_to_system(&batched, &sys, 0.01).unwrap();
        let hybrid_vs_ode = compare_to_system(&hybrid, &sys, 0.01).unwrap();
        let aggregate_vs_ode = compare_to_system(&aggregate, &sys, 0.01).unwrap();
        prop_assert!(agent_vs_ode.max_abs_error < 0.15, "agent vs ODE: {}", agent_vs_ode.max_abs_error);
        prop_assert!(batched_vs_ode.max_abs_error < 0.15, "batched vs ODE: {}", batched_vs_ode.max_abs_error);
        prop_assert!(hybrid_vs_ode.max_abs_error < 0.15, "hybrid vs ODE: {}", hybrid_vs_ode.max_abs_error);
        prop_assert!(aggregate_vs_ode.max_abs_error < 0.15, "aggregate vs ODE: {}", aggregate_vs_ode.max_abs_error);

        // …and therefore each other, sampled on the same period grid.
        let agent_vs_batched = compare_trajectories(&agent, &batched).unwrap();
        prop_assert!(agent_vs_batched.max_abs_error < 0.2, "agent vs batched: {}", agent_vs_batched.max_abs_error);
        let agent_vs_hybrid = compare_trajectories(&agent, &hybrid).unwrap();
        prop_assert!(agent_vs_hybrid.max_abs_error < 0.2, "agent vs hybrid: {}", agent_vs_hybrid.max_abs_error);
        let hybrid_vs_batched = compare_trajectories(&hybrid, &batched).unwrap();
        prop_assert!(hybrid_vs_batched.max_abs_error < 0.2, "hybrid vs batched: {}", hybrid_vs_batched.max_abs_error);
        let batched_vs_aggregate = compare_trajectories(&batched, &aggregate).unwrap();
        prop_assert!(batched_vs_aggregate.max_abs_error < 0.2, "batched vs aggregate: {}", batched_vs_aggregate.max_abs_error);
        let agent_vs_aggregate = compare_trajectories(&agent, &aggregate).unwrap();
        prop_assert!(agent_vs_aggregate.max_abs_error < 0.2, "agent vs aggregate: {}", agent_vs_aggregate.max_abs_error);
    }

    /// LV-majority equivalence: the hybrid, agent and batched fidelities
    /// produce matching ensemble-mean trajectories on a clear-majority LV
    /// run. The workload starts with the undecided state empty and ends with
    /// the losing proposal near extinction, so the hybrid runs spend their
    /// head and tail at membership fidelity with a long batched middle.
    #[test]
    fn lv_majority_fidelities_are_statistically_equivalent(seed_base in 0u64..1_000) {
        let protocol = LvParams::new().protocol().unwrap();
        let n = 2_000usize;
        let split = 1_200u64; // 60/40
        let mean_of = |runtime: &str, seed_base: u64| -> Trajectory {
            let ensemble = Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, 700).unwrap())
                .initial(InitialStates::counts(&[split, n as u64 - split, 0]))
                .seeds(seed_base..seed_base + 8)
                .threads(4);
            let result = match runtime {
                "agent" => ensemble.run::<AgentRuntime>(),
                "batched" => ensemble.run::<BatchedRuntime>(),
                _ => ensemble.run::<HybridRuntime>(),
            }
            .expect("ensemble runs");
            result.mean
        };
        let agent = mean_of("agent", seed_base);
        let batched = mean_of("batched", seed_base);
        let hybrid = mean_of("hybrid", seed_base);
        let tolerance = n as f64 * 0.15;
        for (period, ((a, b), h)) in agent
            .states()
            .iter()
            .zip(batched.states())
            .zip(hybrid.states())
            .enumerate()
        {
            for state in 0..3 {
                prop_assert!(
                    (a[state] - h[state]).abs() < tolerance,
                    "period {period} state {state}: agent {} vs hybrid {}",
                    a[state], h[state]
                );
                prop_assert!(
                    (b[state] - h[state]).abs() < tolerance,
                    "period {period} state {state}: batched {} vs hybrid {}",
                    b[state], h[state]
                );
            }
        }
        // All three select the initial majority on average.
        prop_assert!(agent.last_state()[0] > n as f64 * 0.9);
        prop_assert!(hybrid.last_state()[0] > n as f64 * 0.9);
        prop_assert!(batched.last_state()[0] > n as f64 * 0.9);
    }

    /// The batched runtime conserves the process count on random compiled
    /// protocols, like the other fidelities (scenario-driven, count level).
    #[test]
    fn batched_runtime_conserves_processes(
        sys in partitionable_system(3, 4),
        seed in 0u64..1000,
    ) {
        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        let n = 600u64;
        let initial = InitialStates::counts(&[200, 200, 200]);
        let scenario = Scenario::new(n as usize, 40).unwrap().with_seed(seed);
        let run = Simulation::of(protocol)
            .scenario(scenario)
            .initial(initial)
            .observe(CountsRecorder::new())
            .run::<BatchedRuntime>()
            .unwrap();
        for (_, s) in run.counts.iter() {
            prop_assert_eq!(s.iter().sum::<f64>() as u64, n);
        }
    }

    /// A sharded ensemble at S = 8 with full mixing (migration = 1.0 makes
    /// every period a complete reshuffle, so the population is statistically
    /// well-mixed again) matches the batched ensemble's per-period means
    /// within their combined Welford standard-error envelopes.
    #[test]
    fn fully_mixed_sharded_matches_batched_ensemble_means(seed_base in 0u64..1_000) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 2_000usize;
        let periods = 150;
        let ensemble = || {
            Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, periods).unwrap())
                .initial(InitialStates::counts(&[n as u64 - 16, 16]))
                .seeds(seed_base..seed_base + 8)
                .threads(4)
        };
        let batched = ensemble().run::<BatchedRuntime>().unwrap();
        let sharded = ensemble()
            .topology(Topology::sharded(8, 1.0).unwrap())
            .run::<ShardedRuntime>()
            .unwrap();
        let runs = 8.0f64;
        for name in ["x", "y"] {
            let mb = batched.mean_series(name).unwrap();
            let sb = batched.std_series(name).unwrap();
            let ms = sharded.mean_series(name).unwrap();
            let ss = sharded.std_series(name).unwrap();
            for (p, ((a, b), (sa, sc))) in
                mb.iter().zip(&ms).zip(sb.iter().zip(&ss)).enumerate()
            {
                // Difference of two independent 8-seed means: the standard
                // error is at most (σ_a + σ_b)/√runs; 6 of those plus a 1 %
                // floor keeps false alarms out without hiding a real bias.
                let tolerance = 6.0 * (sa + sc) / runs.sqrt() + 0.01 * n as f64;
                prop_assert!(
                    (a - b).abs() <= tolerance,
                    "state {name} period {p}: batched mean {a}, sharded mean {b}, \
                     tolerance {tolerance}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// On the implicit zero-latency, lossless transport the async runtime's
    /// ensemble-mean epidemic trajectory matches the batched and agent
    /// runtimes' within their combined Welford standard-error envelopes:
    /// with instantaneous delivery every chain completes inside its wake
    /// instant, so a period collapses to the agent runtime's sequential
    /// sweep under a random visiting permutation.
    #[test]
    fn async_zero_latency_matches_synchronized_ensemble_means(seed_base in 0u64..1_000) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 2_000usize;
        let periods = 150;
        let ensemble = || {
            Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, periods).unwrap())
                .initial(InitialStates::counts(&[n as u64 - 16, 16]))
                .seeds(seed_base..seed_base + 8)
                .threads(4)
        };
        let asynchronous = ensemble().run::<AsyncRuntime>().unwrap();
        let runs = 8.0f64;
        for synchronized in [
            ensemble().run::<BatchedRuntime>().unwrap(),
            ensemble().run::<AgentRuntime>().unwrap(),
        ] {
            for name in ["x", "y"] {
                let ma = asynchronous.mean_series(name).unwrap();
                let sa = asynchronous.std_series(name).unwrap();
                let ms = synchronized.mean_series(name).unwrap();
                let ss = synchronized.std_series(name).unwrap();
                for (p, ((a, b), (da, db))) in
                    ma.iter().zip(&ms).zip(sa.iter().zip(&ss)).enumerate()
                {
                    let tolerance = 6.0 * (da + db) / runs.sqrt() + 0.01 * n as f64;
                    prop_assert!(
                        (a - b).abs() <= tolerance,
                        "state {name} period {p}: async mean {a}, synchronized mean {b}, \
                         tolerance {tolerance}"
                    );
                }
            }
        }
    }

    /// LV-majority under the zero-latency transport: the async runtime's
    /// ensemble means track the batched runtime's through the full
    /// three-state selection dynamics, and both select the initial majority.
    #[test]
    fn async_lv_majority_matches_batched_ensemble_means(seed_base in 0u64..1_000) {
        let protocol = LvParams::new().protocol().unwrap();
        let n = 2_000usize;
        let split = 1_200u64; // 60/40
        let ensemble = || {
            Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, 700).unwrap())
                .initial(InitialStates::counts(&[split, n as u64 - split, 0]))
                .seeds(seed_base..seed_base + 8)
                .threads(4)
        };
        let asynchronous = ensemble().run::<AsyncRuntime>().unwrap().mean;
        let batched = ensemble().run::<BatchedRuntime>().unwrap().mean;
        let tolerance = n as f64 * 0.15;
        for (period, (a, b)) in asynchronous
            .states()
            .iter()
            .zip(batched.states())
            .enumerate()
        {
            for state in 0..3 {
                prop_assert!(
                    (a[state] - b[state]).abs() < tolerance,
                    "period {period} state {state}: async {} vs batched {}",
                    a[state], b[state]
                );
            }
        }
        prop_assert!(asynchronous.last_state()[0] > n as f64 * 0.9);
        prop_assert!(batched.last_state()[0] > n as f64 * 0.9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With one shard and no shard-targeted events the sharded runtime
    /// *delegates*: the run is bit-for-bit the batched run — identical
    /// trajectories, not just statistically close — even with a massive
    /// failure and a background crash/recovery model in play.
    #[test]
    fn sharded_s1_is_bit_for_bit_batched(
        sys in partitionable_system(3, 4),
        seed in 0u64..1_000,
        migration in 0.0f64..1.0,
    ) {
        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        let n = 900usize;
        let initial = InitialStates::counts(&[300, 300, 300]);
        let scenario = Scenario::new(n, 30)
            .unwrap()
            .with_seed(seed)
            .with_massive_failure(10, 0.3)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.01, 0.05).unwrap());
        let run = |sharded: bool| {
            let mut sim = Simulation::of(protocol.clone())
                .scenario(scenario.clone())
                .initial(initial.clone())
                .observe(CountsRecorder::new());
            if sharded {
                sim = sim.topology(Topology::sharded(1, migration).unwrap());
                sim.run::<ShardedRuntime>()
            } else {
                sim.run::<BatchedRuntime>()
            }
        };
        prop_assert_eq!(run(true).unwrap(), run(false).unwrap());
    }

    /// The sharded runtime conserves the total population (alive + crashed)
    /// every period, under migration, a global massive failure, a background
    /// crash/recovery model, a shard-targeted failure and a partition window.
    #[test]
    fn sharded_runtime_conserves_total_population(
        sys in partitionable_system(3, 4),
        seed in 0u64..1_000,
        shards in 2usize..7,
        migration in 0.0f64..1.0,
    ) {
        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        let n = 900usize;
        let scenario = Scenario::new(n, 30)
            .unwrap()
            .with_seed(seed)
            .with_topology(Topology::sharded(shards, migration).unwrap())
            .with_massive_failure(5, 0.2)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.02, 0.05).unwrap())
            .with_shard_massive_failure(8, 0, 0.5)
            .unwrap()
            .with_shard_partition(1, 3, 12)
            .unwrap();
        let run = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[300, 300, 300]))
            .observe(CountsRecorder::new())
            .run_auto()
            .unwrap();
        prop_assert_eq!(run.counts.len(), 31);
        for (period, s) in run.counts.iter() {
            prop_assert_eq!(
                s.iter().sum::<f64>() as u64, n as u64,
                "total population drifted at period {}", period
            );
        }
    }

    /// An *oblivious* adversary — a fixed `CrashUniform` schedule that never
    /// looks at the run — is bit-for-bit the scheduled massive-failure path,
    /// on both the count-level (batched) and per-id (agent) runtimes: the
    /// injection machinery adds no RNG draws and no semantic drift of its
    /// own. The adaptive strategies differ from scheduled events only by
    /// *what they choose*, never by how a choice is applied.
    #[test]
    fn oblivious_adversary_is_bit_for_bit_the_scheduled_event_path(
        sys in partitionable_system(3, 4),
        seed in 0u64..1_000,
        period in 1u64..29,
        sixteenths in 1u32..16,
    ) {
        let protocol = ProtocolCompiler::new("random").compile(&sys).unwrap();
        let n = 900usize;
        let initial = InitialStates::counts(&[300, 300, 300]);
        // Exact binary fraction: floor(q·c) arithmetic cannot drift.
        let fraction = f64::from(sixteenths) / 16.0;
        let base = || Scenario::new(n, 30).unwrap().with_seed(seed);
        let scheduled = base().with_massive_failure(period, fraction).unwrap();
        let adversarial = base().with_adversary(
            ObliviousSchedule::new()
                .crash_uniform_at(period, fraction)
                .unwrap(),
        );
        let run = |scenario: Scenario, batched: bool| {
            let sim = Simulation::of(protocol.clone())
                .scenario(scenario)
                .initial(initial.clone())
                .observe(CountsRecorder::new())
                .observe(AliveTracker::new());
            if batched {
                sim.run::<BatchedRuntime>()
            } else {
                sim.run::<AgentRuntime>()
            }
        };
        for batched in [true, false] {
            prop_assert_eq!(
                run(scheduled.clone(), batched).unwrap(),
                run(adversarial.clone(), batched).unwrap(),
                "fidelity (batched = {}) diverged", batched
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The continuous-time fidelities (exact SSA and tau-leaping) match the
    /// synchronized tiers on the epidemic: at a slow normalizing constant the
    /// within-period compounding the event clock resolves is O(q²) per
    /// period, so each continuous-time ensemble mean stays inside the
    /// combined Welford standard-error envelope of both the batched and the
    /// agent ensembles.
    #[test]
    fn continuous_time_fidelities_match_synchronized_ensemble_means(seed_base in 0u64..1_000) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.05)
            .compile(&sys)
            .unwrap();
        let n = 2_000usize;
        let periods = 250;
        let ensemble = || {
            Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, periods).unwrap())
                .initial(InitialStates::counts(&[n as u64 - 16, 16]))
                .seeds(seed_base..seed_base + 8)
                .threads(4)
        };
        let continuous = [
            ("ssa", ensemble().run::<SsaRuntime>().unwrap()),
            ("tau-leap", ensemble().run::<TauLeapRuntime>().unwrap()),
        ];
        let runs = 8.0f64;
        for synchronized in [
            ensemble().run::<BatchedRuntime>().unwrap(),
            ensemble().run::<AgentRuntime>().unwrap(),
        ] {
            for (label, result) in &continuous {
                for name in ["x", "y"] {
                    let ma = result.mean_series(name).unwrap();
                    let sa = result.std_series(name).unwrap();
                    let ms = synchronized.mean_series(name).unwrap();
                    let ss = synchronized.std_series(name).unwrap();
                    for (p, ((a, b), (da, db))) in
                        ma.iter().zip(&ms).zip(sa.iter().zip(&ss)).enumerate()
                    {
                        let tolerance = 6.0 * (da + db) / runs.sqrt() + 0.01 * n as f64;
                        prop_assert!(
                            (a - b).abs() <= tolerance,
                            "state {name} period {p}: {label} mean {a}, synchronized mean {b}, \
                             tolerance {tolerance}"
                        );
                    }
                }
            }
        }
    }

    /// LV-majority under the continuous-time fidelities: the SSA and
    /// tau-leap ensemble means track the batched tier's through the full
    /// three-state selection dynamics (the paper's default p = 0.01 keeps
    /// per-period rates deep in the shared continuous-time limit), and every
    /// fidelity selects the initial majority.
    #[test]
    fn continuous_time_lv_majority_matches_batched_ensemble_means(seed_base in 0u64..1_000) {
        let protocol = LvParams::new().protocol().unwrap();
        let n = 2_000usize;
        let split = 1_200u64; // 60/40
        let ensemble = || {
            Ensemble::of(protocol.clone())
                .scenario(Scenario::new(n, 700).unwrap())
                .initial(InitialStates::counts(&[split, n as u64 - split, 0]))
                .seeds(seed_base..seed_base + 8)
                .threads(4)
        };
        let batched = ensemble().run::<BatchedRuntime>().unwrap().mean;
        let tolerance = n as f64 * 0.15;
        for (label, result) in [
            ("ssa", ensemble().run::<SsaRuntime>().unwrap()),
            ("tau-leap", ensemble().run::<TauLeapRuntime>().unwrap()),
        ] {
            for (period, (a, b)) in result.mean.states().iter().zip(batched.states()).enumerate() {
                for state in 0..3 {
                    prop_assert!(
                        (a[state] - b[state]).abs() < tolerance,
                        "period {period} state {state}: {label} {} vs batched {}",
                        a[state], b[state]
                    );
                }
            }
            prop_assert!(result.mean.last_state()[0] > n as f64 * 0.9);
        }
        prop_assert!(batched.last_state()[0] > n as f64 * 0.9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tau-leap runtime's small-count fallback (exact SSA burst steps at
    /// the epidemic's takeoff head) is deterministic per seed: two runs of
    /// the same scenario are bit-for-bit identical, across random seeds and
    /// seed-count regimes that exercise both the leaping and fallback paths.
    #[test]
    fn tau_leap_fallback_is_deterministic_per_seed(
        seed in 0u64..1_000,
        infected in 1u64..8,
    ) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 2_000u64;
        let scenario = Scenario::new(n as usize, 80).unwrap().with_seed(seed);
        let initial = InitialStates::counts(&[n - infected, infected]);
        let run = || {
            TauLeapRuntime::new(protocol.clone())
                .run(&scenario, &initial)
                .unwrap()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Worker-process entry point for the socket-transport tests below: the
/// supervisor re-execs this test binary filtered down to this test by name.
/// In a normal test run (no `DPDE_UDS_SOCKET` in the environment) it is an
/// instant no-op.
#[test]
fn worker_entry() {
    maybe_run_worker();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The Unix-datagram-socket transport is an execution detail, not a
    /// model change: with zero loss and a single healthy local worker per
    /// run, the async runtime's ensemble means over the socket backend match
    /// the in-process broker's within the combined Welford standard-error
    /// envelopes. (The implementation actually replays the in-proc virtual
    /// outcomes bit-for-bit when workers stay healthy; the envelope is the
    /// cross-backend contract this test pins.)
    #[test]
    fn socket_backend_matches_in_proc_ensemble_means(seed_base in 0u64..1_000) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 200usize;
        let link = LinkModel::new(LatencyModel::Uniform { min: 0.0, max: 10.0 }, 0.0).unwrap();
        let ensemble = |backend: TransportBackend| {
            Ensemble::of(protocol.clone())
                .scenario(
                    Scenario::new(n, 25)
                        .unwrap()
                        .with_transport(TransportConfig::new(link).with_backend(backend))
                        .unwrap(),
                )
                .initial(InitialStates::counts(&[n as u64 - 10, 10]))
                .seeds(seed_base..seed_base + 4)
                .threads(2)
                .run::<AsyncRuntime>()
                .unwrap()
        };
        let socket = ensemble(TransportBackend::UnixSocket(SocketConfig::new(
            WorkerLauncher::CurrentExeTest("worker_entry".into()),
        )));
        let in_proc = ensemble(TransportBackend::InProcess);
        let runs = 4.0f64;
        for name in ["x", "y"] {
            let ms = socket.mean_series(name).unwrap();
            let ss = socket.std_series(name).unwrap();
            let mi = in_proc.mean_series(name).unwrap();
            let si = in_proc.std_series(name).unwrap();
            for (p, ((a, b), (da, db))) in ms.iter().zip(&mi).zip(ss.iter().zip(&si)).enumerate() {
                let tolerance = 6.0 * (da + db) / runs.sqrt() + 0.01 * n as f64;
                prop_assert!(
                    (a - b).abs() <= tolerance,
                    "state {name} period {p}: socket mean {a}, in-proc mean {b}, \
                     tolerance {tolerance}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The checkpoint/restart path is deterministic per seed: a supervised
    /// run in which a worker-striking adversary repeatedly kills the densest
    /// transport segment (crash, park, period-boundary-checkpoint restore)
    /// replays bit-for-bit, and the kills demonstrably land. The in-process
    /// backend keeps the same supervision semantics as the socket transport
    /// without real process churn, which is what makes this exactly
    /// reproducible everywhere.
    #[test]
    fn supervised_kill_and_restart_is_deterministic_per_seed(seed in 0u64..1_000) {
        let sys = parse_system("x' = -x*y\ny' = x*y", &[]).unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let transport = TransportConfig::default()
            .with_segments(4)
            .unwrap()
            .with_supervision(3);
        let scenario = Scenario::new(400, 40)
            .unwrap()
            .with_seed(seed)
            .with_transport(transport)
            .unwrap()
            .with_adversary(
                TargetLargestState::new(0.25, 5, 10, 2)
                    .unwrap()
                    .striking_workers(),
            );
        let run = || {
            Simulation::of(protocol.clone())
                .scenario(scenario.clone())
                .initial(InitialStates::counts(&[390, 10]))
                .observe(CountsRecorder::new())
                .observe(ResilienceReport::new())
                .run::<AsyncRuntime>()
                .unwrap()
        };
        let first = run();
        let victims: f64 = first
            .metrics
            .series("resilience:victims")
            .unwrap()
            .iter()
            .map(|&(_, v)| v)
            .sum();
        prop_assert!(victims > 0.0, "the adversary's worker strikes must land");
        prop_assert_eq!(first, run());
    }
}
